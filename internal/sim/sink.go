// Sink stage of the policy pipeline: every consumer of the run — the
// event trace, the fragmentation accounting, the telemetry series —
// observes the same stream of trace events and end-of-epoch states
// instead of being hard-wired into the epoch loop.
package sim

import "cmpqos/internal/trace"

// EpochState is the end-of-epoch observation delivered to every sink:
// the epoch just advanced and its fragmentation deltas (§3.4), in
// resource-epochs.
type EpochState struct {
	Cycle        int64 // first cycle of the epoch that just ended
	Epoch        int64 // epoch index
	IdleCores    float64
	IdleWays     float64
	InternalWays float64
}

// Sink observes a run. Event delivers every trace event at the cycle it
// happens; EpochEnd delivers the per-epoch state after the epoch's work
// has been retired (the memory bus window has rolled, so bus telemetry
// read from the runner reflects the finished epoch). Sinks must not
// mutate simulation state.
type Sink interface {
	Event(ev trace.Event)
	EpochEnd(st EpochState)
}

// AddSink attaches an additional observer. Call before Run; the
// built-in consumers (trace recorder, fragmentation accounting, and —
// when Config.RecordSeries is set — the telemetry series) always
// observe first.
func (r *Runner) AddSink(s Sink) { r.sinks = append(r.sinks, s) }

// emit delivers one trace event to the recorder and every added sink.
// The built-in recorder is called directly (not through the Sink
// interface) because probe-heavy admission windows emit thousands of
// events per run and the inlined Record is measurably cheaper than a
// dynamic dispatch; r.sinks is empty unless AddSink was used, so the
// observer loop costs one length check on the default pipeline.
func (r *Runner) emit(ev trace.Event) {
	if r.rec != nil { // nil in streaming (FoldCompleted) mode
		r.rec.Record(ev)
	}
	for _, s := range r.sinks {
		s.Event(ev)
	}
}

// endEpochSlow delivers the end-of-epoch state to the optional
// telemetry series and any added observers. step() delivers to the
// built-in fragmentation sink inline (the epoch loop is the hot loop
// of the whole simulator) and only calls here when a series or an
// observer is actually attached.
func (r *Runner) endEpochSlow(st EpochState) {
	if r.seriesS != nil {
		r.seriesS.EpochEnd(st)
	}
	for _, s := range r.sinks {
		s.EpochEnd(st)
	}
}

// fragDeltas computes one epoch's fragmentation contributions (§3.4).
// Internal fragmentation is a *reservation* concept: it counts
// reserved-but-unneeded capacity, so only cores running reserved jobs
// contribute, and EqualPart — which reserves nothing — reports zero by
// definition. A job's "useful" ways are where its miss curve's marginal
// benefit drops below 1% of its 1-way miss ratio; reserving beyond that
// is the capacity resource stealing recovers.
func (r *Runner) fragDeltas(byCore [][]*Job) (idleCores, idleWays, internal float64) {
	busyCores := 0
	usedWays := 0.0
	for _, jobs := range byCore {
		if len(jobs) == 0 {
			continue
		}
		busyCores++
		// Jobs timesharing a core share one partition: count the core's
		// allocation once (the widest job's share).
		coreWays, coreUseful := 0.0, 0.0
		reserved := false
		for _, j := range jobs {
			if j.WaysF > coreWays {
				coreWays = j.WaysF
			}
			if j.usefulW == 0 {
				// Lazily memoized: the profile is fixed at submission and
				// usefulWays is never below 1, so 0 means "not computed".
				j.usefulW = usefulWays(j.Profile)
			}
			if j.usefulW > coreUseful {
				coreUseful = j.usefulW
			}
			if j.ReservedRunning(r.now) {
				reserved = true
			}
		}
		usedWays += coreWays
		if reserved && !r.cfg.Policy.noAdmission() && coreWays > coreUseful {
			internal += coreWays - coreUseful
		}
	}
	// Faulted resources are lost capacity, not fragmentation: they are
	// excluded from both idle pools.
	idleCores = float64(r.cfg.Cores - r.downCores - busyCores)
	if idleCores < 0 {
		idleCores = 0
	}
	if idle := float64(r.cfg.L2.Ways-r.waysDown) - usedWays; idle > 0 {
		idleWays = idle
	}
	return idleCores, idleWays, internal
}

// fragSink accumulates the fragmentation deltas, in resource-epochs.
// Accumulation order is the epoch order, so the float sums are
// bit-identical to the historical inline accumulators.
type fragSink struct {
	idleCores float64
	idleWays  float64
	internal  float64
}

func (*fragSink) Event(trace.Event) {}

func (s *fragSink) EpochEnd(st EpochState) {
	s.idleCores += st.IdleCores
	s.idleWays += st.IdleWays
	s.internal += st.InternalWays
}

// seriesSink samples the node's telemetry every SeriesStride epochs. It
// keeps the runner to census job states and read the (just rolled) bus
// window — the per-epoch cost stays gated on Config.RecordSeries
// because the sink is only installed when that is set.
type seriesSink struct {
	r      *Runner
	stride int64
	series []SeriesSample
}

func newSeriesSink(r *Runner) *seriesSink {
	stride := int64(r.cfg.SeriesStride)
	if stride <= 0 {
		stride = 16
	}
	return &seriesSink{r: r, stride: stride}
}

func (*seriesSink) Event(trace.Event) {}

func (s *seriesSink) EpochEnd(st EpochState) {
	if st.Epoch%s.stride != 0 {
		return
	}
	if s.series == nil {
		// Sized for a typical run (samples every `stride` epochs); longer
		// runs grow from here instead of from a 1-element slice.
		s.series = make([]SeriesSample, 0, 128)
	}
	r := s.r
	smp := SeriesSample{Cycle: st.Cycle, BusUtil: r.bus.Utilization()}
	for _, j := range r.accepted {
		switch j.State {
		case StateRunning:
			smp.Running++
			if j.ReservedRunning(st.Cycle) {
				smp.ReservedWays += int(j.WaysF)
			} else {
				smp.OppJobs++
			}
		case StateWaiting:
			smp.Waiting++
		}
	}
	s.series = append(s.series, smp)
}
