package cmpqos

// The benchmark harness: one testing.B benchmark per paper table and
// figure (regenerating the experiment and reporting its headline numbers
// as custom metrics), plus microarchitecture benches for the substrate
// pieces (cache access paths, shadow tags, admission tests) and the
// ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches use scaled job lengths (20 M instructions) so a full
// sweep completes in seconds; pass -instr via the qossim CLI for the
// paper's 200 M scale.

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cmpqos/internal/alloc"
	"cmpqos/internal/cache"
	"cmpqos/internal/experiments"
	"cmpqos/internal/jobfile"
	"cmpqos/internal/qos"
	"cmpqos/internal/server"
	"cmpqos/internal/sim"
	"cmpqos/internal/workload"
)

// benchOpts are the scaled experiment options used by the figure
// benches. The cross-experiment run cache is disabled so every
// iteration measures real simulation work — with the (default) cache
// on, iterations after the first would only measure map hits.
func benchOpts() experiments.Options {
	return experiments.Options{JobInstr: 20_000_000, DisableRunCache: true}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AloneIPC, "alone-IPC")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			gain := 1 - float64(r.Scenarios[2].TotalCycles)/float64(r.Scenarios[0].TotalCycles)
			b.ReportMetric(gain*100, "downgrade-gain-%")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if c, ok := r.Cell("gobmk", sim.Hybrid1); ok {
				b.ReportMetric(c.Normalized, "gobmk-hybrid1-speedup")
			}
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric((1-float64(r.AutoTotal)/float64(r.StrictTotal))*100, "autodown-gain-%")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// The X=5% point: miss increase should sit at ~5%.
			b.ReportMetric(r.Rows[2].MissIncrease*100, "missinc-at-5%-slack")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if c, ok := r.Cell("Mix-1", sim.Hybrid2); ok {
				b.ReportMetric(c.Normalized, "mix1-hybrid2-speedup")
			}
		}
	}
}

func BenchmarkLAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.LAC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Rows[1].Occupancy*100, "occupancy-%-at-512")
		}
	}
}

// ---- Ablation benches (DESIGN.md) ----

func BenchmarkPartitionVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPartition(experiments.Options{})
		if i == b.N-1 {
			b.ReportMetric(r.GlobalCoV, "global-CoV")
			b.ReportMetric(r.PerSetCoV, "per-set-CoV")
		}
	}
}

func BenchmarkShadowSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSampling(experiments.Options{})
		if i == b.N-1 {
			b.ReportMetric(r.Full, "full-excess-ratio")
		}
	}
}

// ---- Microarchitecture benches ----

func benchCacheAccesses(b *testing.B, c cache.Interface) {
	b.Helper()
	p := workload.MustByName("bzip2")
	st := p.NewStream(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, st.Next())
	}
}

func BenchmarkCacheLRU(b *testing.B) {
	benchCacheAccesses(b, cache.NewLRU(cache.PaperL2()))
}

func BenchmarkCachePartitioned(b *testing.B) {
	c := cache.NewPartitioned(cache.PaperL2())
	c.SetTarget(0, 7)
	c.SetClass(0, cache.ClassReserved)
	benchCacheAccesses(b, c)
}

func BenchmarkCacheGlobalPartition(b *testing.B) {
	c := cache.NewGlobal(cache.PaperL2())
	c.SetTargetWays(0, 7)
	benchCacheAccesses(b, c)
}

// BenchmarkVictimPolicy stresses the QoS-aware victim selection: four
// owners with mixed classes contending in every set.
func BenchmarkVictimPolicy(b *testing.B) {
	cfg := cache.PaperL2()
	c := cache.NewPartitioned(cfg)
	c.SetTarget(0, 7)
	c.SetClass(0, cache.ClassReserved)
	c.SetTarget(1, 5)
	c.SetClass(1, cache.ClassReserved)
	c.SetClass(2, cache.ClassOpportunistic)
	c.SetClass(3, cache.ClassOpportunistic)
	streams := []*workload.Stream{
		workload.MustByName("bzip2").NewStream(1, 0),
		workload.MustByName("hmmer").NewStream(1, 1),
		workload.MustByName("gobmk").NewStream(1, 2),
		workload.MustByName("mcf").NewStream(1, 3),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := i & 3
		c.Access(o, streams[o].Next())
	}
}

// ---- Miss-curve profiler benches ----
//
// One 16-way curve at the paper L2 geometry, 50k warmup + 50k measured
// accesses: the replay path runs the stream through 16 fresh caches
// (1.6 M accesses), the single-pass stack-distance profiler traverses
// it once (100 k accesses), and the sampled variant skips 7/8 of those.

func curveBenchCfg() cache.Config {
	return cache.Config{SizeBytes: 2 << 20, Ways: 16, BlockSize: 64, Owners: 1, HitCycles: 10}
}

func BenchmarkMissCurveReplay(b *testing.B) {
	p := workload.MustByName("bzip2")
	cfg := curveBenchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.ProbeMissCurve(cfg, func() cache.AddrStream { return p.NewStream(42, 0) }, 50_000, 50_000)
	}
}

func BenchmarkMissCurveSinglePass(b *testing.B) {
	p := workload.MustByName("bzip2")
	cfg := curveBenchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.SinglePassMissCurve(cfg, p.NewStream(42, 0), 50_000, 50_000)
	}
}

func BenchmarkMissCurveSinglePassSampled(b *testing.B) {
	p := workload.MustByName("bzip2")
	cfg := curveBenchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.SinglePassMissCurveSampled(cfg, p.NewStream(42, 0), 50_000, 50_000, 8)
	}
}

func BenchmarkShadowTagsObserve(b *testing.B) {
	cfg := cache.PaperL2()
	main := cache.NewPartitioned(cfg)
	main.SetTarget(0, 3)
	main.SetClass(0, cache.ClassReserved)
	st := cache.NewShadowTags(cfg, 8)
	st.SetTarget(0, 7)
	st.SetClass(0, cache.ClassReserved)
	stream := workload.MustByName("bzip2").NewStream(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := stream.Next()
		st.Observe(0, a, main.Access(0, a))
	}
}

// ---- Admission control benches ----

// packedTimeline builds a timeline with n live medium reservations, two
// per 1000-cycle window back to back — the paper's §7.1 shape (two of
// {1 core, 7 ways} saturate 16 ways) stretched to arbitrary depth. A
// third medium request is blocked in the ways dimension across every
// window, so EarliestFit must reason past all n holds to find the slot
// at the horizon.
func packedTimeline(n int) *qos.Timeline {
	tl := qos.NewTimeline(qos.ResourceVector{Cores: 4, CacheWays: 16})
	med := qos.PresetMedium()
	const tw = int64(1000)
	for i := 0; i < n; i++ {
		tl.Reserve(i, med, int64(i/2)*tw, tw)
	}
	return tl
}

// BenchmarkTimelineEarliestFit measures one §5 admission decision
// against 1k/100k/1M live reservations. The indexed profile resolves
// the fully-blocked scan in a handful of tree descents, so the curve
// stays logarithmic (sub-microsecond at 1M) where the naive candidate
// scan was cubic.
func BenchmarkTimelineEarliestFit(b *testing.B) {
	med := qos.PresetMedium()
	for _, c := range []struct {
		label string
		n     int
	}{{"1k", 1_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		b.Run("n="+c.label, func(b *testing.B) {
			tl := packedTimeline(c.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tl.EarliestFit(med, 0, 1000, 0); !ok {
					b.Fatal("no fit found")
				}
			}
		})
	}
}

// BenchmarkTimelineChurn measures the steady-state mutation mix: release
// the oldest hold, find the slot it freed, and re-reserve it — the
// admission loop's per-job footprint at 100k live reservations.
func BenchmarkTimelineChurn(b *testing.B) {
	const n = 100_000
	tl := packedTimeline(n)
	med := qos.PresetMedium()
	ids := make([]int, 0, n)
	for _, r := range tl.Reservations() {
		ids = append(ids, r.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old, _ := tl.Get(ids[i%len(ids)])
		tl.Release(old.ID)
		s, ok := tl.EarliestFit(med, old.Start, 1000, old.Start+1000)
		if !ok {
			b.Fatal("freed slot not found")
		}
		ids[i%len(ids)] = tl.Reserve(old.JobID, med, s, 1000)
	}
}

// BenchmarkTimelineSetCapacity measures a fault storm at 100k live
// reservations: ways go dark (evicting one hold per affected window),
// recover, and the evictees are re-admitted — the sim's refit path.
func BenchmarkTimelineSetCapacity(b *testing.B) {
	const n = 100_000
	tl := packedTimeline(n)
	full := qos.ResourceVector{Cores: 4, CacheWays: 16}
	dark := qos.ResourceVector{Cores: 4, CacheWays: 13}
	horizon := tl.Horizon(0)
	from := horizon - 10_000 // the storm clips the last ten windows
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evicted := tl.SetCapacity(dark, from)
		tl.SetCapacity(full, from)
		for _, r := range evicted {
			tl.Reserve(r.JobID, r.Vec, r.Start, r.End-r.Start)
		}
	}
}

// BenchmarkTimelineAvailability measures the profile walk that replaced
// the per-call map+sort: appending the availability steps for a 10-window
// span out of 100k reservations into a reused buffer allocates nothing.
func BenchmarkTimelineAvailability(b *testing.B) {
	const n = 100_000
	tl := packedTimeline(n)
	buf := make([]qos.AvailabilityStep, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tl.AppendAvailability(buf[:0], 50_000, 60_000)
	}
}

func BenchmarkLACAdmit(b *testing.B) {
	l := qos.NewLAC(qos.ResourceVector{Cores: 4, CacheWays: 16})
	tw := int64(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Admit(qos.Request{
			JobID:   i,
			Target:  qos.RUM{Resources: qos.PresetMedium(), MaxWallClock: tw, Deadline: int64(i)*tw + 100*tw},
			Mode:    qos.Strict(),
			Arrival: int64(i) * tw,
		})
		if i%64 == 63 {
			l.Complete(i-32, qos.Strict(), int64(i)*tw)
		}
	}
}

// ---- Whole-simulation benches (one per engine) ----

func BenchmarkSimTableEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
		cfg.JobInstr = 10_000_000
		cfg.StealIntervalInstr = 100_000
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerTick prices the closed loop (DESIGN §13): the
// identical table-engine run with the pid controller retuning every 8
// epochs, so the delta against a static run of the same config is the
// control plane's whole overhead — progress sampling, the tick, boost
// application on every plan rebuild, and the steady windows the tick
// grid caps. Reports how many retunes one run absorbs.
func BenchmarkControllerTick(b *testing.B) {
	var retunes int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.AllStrict, workload.Single("bzip2"))
		cfg.JobInstr = 10_000_000
		cfg.StealIntervalInstr = 100_000
		cfg.EnforceWallClock = true
		cfg.RequestWays = 6
		cfg.Controller = "pid"
		cfg.CtrlIntervalCycles = 8 * cfg.EpochCycles
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		retunes += rep.CtrlRetunes
	}
	b.ReportMetric(float64(retunes)/float64(b.N), "retunes/op")
}

// BenchmarkSimTableEngineNoPlanCache is the ablation pair of
// BenchmarkSimTableEngine: the identical simulation with the epoch-plan
// cache disabled, so the two together report the steady-state win of
// reusing the plan between QoS events.
func BenchmarkSimTableEngineNoPlanCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
		cfg.JobInstr = 10_000_000
		cfg.StealIntervalInstr = 100_000
		cfg.DisablePlanCache = true
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTableEngineNoEventSkip completes the ablation triple:
// plan cache on but the event-horizon fast-forward off. At this bench's
// deliberately event-dense scale (10M-instruction jobs) the two run
// near parity — the plan cache already makes steady epochs cheap and
// most windows end at a real QoS event — which is itself the claim
// worth pinning: the fast-forward's proof obligations do not tax
// event-dense runs. The steady-state win is measured by the
// SimSteadyState and ClusterSteadyFleet pairs below.
func BenchmarkSimTableEngineNoEventSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
		cfg.JobInstr = 10_000_000
		cfg.StealIntervalInstr = 100_000
		cfg.DisableEventSkip = true
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSteadyNode runs one node at the paper's own scale — ten
// 200M-instruction jobs, 250k-cycle epochs — where the run is a handful
// of QoS events separated by hundreds of thousands of steady epochs.
// This is the regime the event-horizon fast-forward targets: with it on,
// ~90% of epochs advance in closed form.
func benchSteadyNode(b *testing.B, disableSkip bool) {
	skipped, total := int64(0), int64(0)
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
		cfg.DisableEventSkip = disableSkip
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		skipped += rep.EpochsSkipped
		total += rep.EpochsStepped + rep.EpochsSkipped
	}
	b.ReportMetric(float64(skipped)/float64(total), "skipped-frac")
}

// BenchmarkSimSteadyState measures the paper-scale single-node run with
// the event-horizon fast-forward on; its NoEventSkip pair is the same
// simulation stepped epoch by epoch. Reports byte-identical either way.
func BenchmarkSimSteadyState(b *testing.B)            { benchSteadyNode(b, false) }
func BenchmarkSimSteadyStateNoEventSkip(b *testing.B) { benchSteadyNode(b, true) }

// benchSteadyFleet is the fleet-scale version of the steady-state pair:
// 1000 paper-scale nodes draining two jobs each. With event skip on the
// calendar only touches nodes at their next QoS event, so fleet cost
// scales with events rather than epochs × nodes — the acceptance target
// is a ≥3x win for the skip-on variant over its pair.
func benchSteadyFleet(b *testing.B, disableSkip bool) {
	skipped, total := int64(0), int64(0)
	for i := 0; i < b.N; i++ {
		node := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
		node.DisableEventSkip = disableSkip
		cfg := sim.ClusterConfig{Nodes: 1000, Node: node, AcceptTarget: 2000}
		cr, err := sim.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := cr.Run()
		if err != nil {
			b.Fatal(err)
		}
		skipped += rep.EpochsSkipped
		total += rep.EpochsStepped + rep.EpochsSkipped
	}
	b.ReportMetric(float64(skipped)/float64(total), "skipped-frac")
}

func BenchmarkClusterSteadyFleet(b *testing.B)            { benchSteadyFleet(b, false) }
func BenchmarkClusterSteadyFleetNoEventSkip(b *testing.B) { benchSteadyFleet(b, true) }

// BenchmarkExperimentPairRunCacheOff/On measure the end-to-end win of
// the cross-experiment run cache on a real repeated workload: Figure 6
// studies the same policy×bzip2 configurations Figure 5 already ran, so
// with a shared (fresh per iteration) cache the whole second experiment
// is served from memoized reports.
func benchExperimentPair(b *testing.B, o experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentPairRunCacheOff(b *testing.B) {
	benchExperimentPair(b, experiments.Options{JobInstr: 20_000_000, DisableRunCache: true})
}

func BenchmarkExperimentPairRunCacheOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := experiments.Options{JobInstr: 20_000_000, Cache: sim.NewRunCache()}
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTraceEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.TraceConfig(sim.Hybrid2, workload.Single("bzip2"))
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentRenderAll measures the full CLI sweep end to end.
func BenchmarkExperimentRenderAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Registry() {
			if r.Name == "ablation-partition" || r.Name == "ablation-sampling" {
				continue // covered by their own benches; too slow here
			}
			if err := r.Run(benchOpts(), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Extension/validation benches ----

func BenchmarkRelatedComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Related(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Cluster(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := r.Rows[len(r.Rows)-1]
			b.ReportMetric(last.JobsPerGcycle, "jobs-per-Gcyc-at-4-nodes")
		}
	}
}

// BenchmarkClusterDispatch measures the GAC fleet at datacenter node
// counts: a full streaming run (bestfit dispatch, skip-idle stepping)
// with four jobs per node, reporting wall time per arrival. The
// per-arrival cost growing far slower than the node count is the
// O(log N) dispatch property.
func BenchmarkClusterDispatch(b *testing.B) {
	for _, nodes := range []int{64, 1000, 5000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			node := sim.DefaultConfig(sim.Hybrid2, workload.Single("bzip2"))
			node.JobInstr = 2_000_000
			node.StealIntervalInstr = 100_000
			cfg := sim.ClusterConfig{Nodes: nodes, Node: node, AcceptTarget: 4 * nodes}
			arrivals := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cr, err := sim.NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := cr.Run()
				if err != nil {
					b.Fatal(err)
				}
				arrivals += rep.Accepted + rep.RejectedProbes
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(arrivals), "ns/arrival")
		})
	}
}

func BenchmarkFragDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Frag(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := cache.NewHierarchy(1, cache.PaperL1(), cache.PaperL2())
	h.L2().SetTarget(0, 7)
	h.L2().SetClass(0, cache.ClassReserved)
	ms := workload.MustByName("bzip2").NewMemStream(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, ms.Next())
	}
}

func BenchmarkUCPAllocation(b *testing.B) {
	demands := []alloc.Demand{
		{Profile: workload.MustByName("bzip2")},
		{Profile: workload.MustByName("mcf")},
		{Profile: workload.MustByName("gobmk")},
		{Profile: workload.MustByName("hmmer")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.UCP(demands, 16)
	}
}

func BenchmarkJobfileParse(b *testing.B) {
	src := `node count=2 cores=4 ways=16
job name=db    bench=bzip2 mode=strict preset=medium tw=500ms deadline=2.0
job name=batch bench=gobmk mode=elastic slack=5% ways=7 tw=300ms deadline=3.0
job name=scav  bench=milc  mode=opportunistic ways=4 tw=200ms
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jobfile.Parse(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNegotiate(b *testing.B) {
	l := qos.NewLAC(qos.ResourceVector{Cores: 4, CacheWays: 16})
	tw := int64(1000)
	for i := 1; i <= 2; i++ {
		l.Admit(qos.Request{JobID: i,
			Target: qos.RUM{Resources: qos.PresetMedium(), MaxWallClock: tw, Deadline: 3 * tw},
			Mode:   qos.Strict()})
	}
	req := qos.Request{JobID: 9,
		Target: qos.RUM{Resources: qos.PresetMedium(), MaxWallClock: tw, Deadline: tw + tw/20},
		Mode:   qos.Strict()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Negotiate(req)
	}
}

func BenchmarkTraceFileRoundTrip(b *testing.B) {
	st := workload.MustByName("bzip2").NewStream(1, 0)
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, st, 100_000); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.ReadTrace(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimFullHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.TraceConfig(sim.AllStrict, workload.Single("gobmk"))
		cfg.ModelL1 = true
		cfg.JobInstr = 2_000_000
		cfg.StealIntervalInstr = 100_000
		cfg.TwMargin = 1.35
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures the daemon's durability hot path: one
// length-prefixed, CRC-framed admission record appended to the
// write-ahead log (sync disabled — this isolates the encode+write cost;
// with -sync each op adds an fsync, which the device, not the code,
// dominates).
func BenchmarkWALAppend(b *testing.B) {
	w, err := qos.CreateWAL(filepath.Join(b.TempDir(), "wal.log"), false)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := qos.WALRecord{
		Op:      qos.WALAdmit,
		JobID:   1,
		Mode:    qos.Strict(),
		RUM:     qos.RUM{Resources: qos.PresetMedium(), MaxWallClock: 1000, Deadline: 5000},
		Arrival: 1,
		Dec:     qos.Decision{Accepted: true, Start: 1, ReservationID: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = int64(i + 1)
		rec.JobID = i
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonSubmit measures a full qosd admission round trip over
// loopback HTTP: submit (opportunistic — no timeline churn between
// iterations) followed by cancel, both write-ahead logged (sync
// disabled so the numbers isolate daemon cost from device fsync).
func BenchmarkDaemonSubmit(b *testing.B) {
	s, err := server.New(server.Config{Dir: b.TempDir(), NoSync: true, SnapshotEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	post := func(path string, body string) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i + 1
		post("/v1/submit", fmt.Sprintf(`{"job_id": %d, "mode": "opportunistic", "cores": 1, "ways": 2}`, id))
		post("/v1/cancel", fmt.Sprintf(`{"job_id": %d}`, id))
	}
}
