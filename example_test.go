package cmpqos_test

import (
	"fmt"

	"cmpqos"
)

// Running the paper's Hybrid-2 configuration end to end: every
// reserved-mode job meets its deadline while Elastic jobs donate stolen
// cache ways to Opportunistic ones.
func ExampleSimulate() {
	cfg := cmpqos.NewSimConfig(cmpqos.Hybrid2, cmpqos.SingleWorkload("bzip2"))
	cfg.JobInstr = 10_000_000 // scaled for the example
	cfg.StealIntervalInstr = 100_000
	rep, err := cmpqos.Simulate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("accepted %d jobs, reserved-job deadline hit rate %.0f%%\n",
		len(rep.Jobs), rep.DeadlineHitRate*100)
	// Output:
	// accepted 10 jobs, reserved-job deadline hit rate 100%
}

// Admission control alone, without the simulator: a convertible RUM
// target is accepted; a non-convertible IPC target cannot be.
func ExampleNewNode() {
	node := cmpqos.NewNode(cmpqos.PaperNodeCapacity())
	ok := node.Admit(cmpqos.Request{
		JobID:  1,
		Target: cmpqos.RUM{Resources: cmpqos.PresetMedium(), MaxWallClock: 1000},
		Mode:   cmpqos.Elastic(0.05),
	})
	bad := node.Admit(cmpqos.Request{JobID: 2, Target: cmpqos.OPM{IPC: 0.3}, Mode: cmpqos.Strict()})
	fmt.Println(ok.Accepted, bad.Accepted)
	// Output:
	// true false
}
