# Developer entry points. Everything here is plain go tooling; there are
# no external dependencies.

GO ?= go

.PHONY: all build vet lint test race fuzz bench bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: vet, canonical formatting, and —
# when installed — staticcheck. staticcheck stays optional locally so
# the target works in offline dev containers; CI installs it and runs
# the full gate.
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test -timeout 10m ./...

# race runs the full suite under the race detector. The experiment
# fan-out (internal/parallel) is the main subject: every multi-run
# experiment must stay data-race-free at any worker count.
race:
	$(GO) test -race -timeout 20m ./...

# fuzz runs a short smoke of each fuzz target (one package per -fuzz
# invocation, as the go tool requires): the job-file and fault-plan
# parsers must never crash on arbitrary input, and the indexed Timeline
# must stay bit-identical to its naive reference on any op sequence,
# and the WAL decoder must recover an intact prefix from any bytes.
fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -timeout 5m ./internal/jobfile
	$(GO) test -fuzz=Fuzz -fuzztime=10s -timeout 5m ./internal/fault
	$(GO) test -fuzz=FuzzTimelineEquivalence -fuzztime=10s -timeout 5m ./internal/qos
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=10s -timeout 5m ./internal/qos

# bench runs the hot-path benchmark suite with allocation stats and
# records the results in BENCH_<date>.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# bench-smoke compiles and runs the timeline admission, cluster
# dispatch, event-horizon steady-state, and controller-tick benches
# once each (-benchtime=1x): a CI guard that the O(log n) structures,
# the fast-forward path, the control plane, and their benchmarks keep
# building and running — timings are meaningless here. It also runs
# the two closed-loop gates: the feedback smoke (pid must not break
# more promises than static under the same storms) and the -ctrl
# static golden identity (the nil controller reproduces the open-loop
# pipeline byte for byte).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTimeline|BenchmarkClusterDispatch|BenchmarkSimSteadyState|BenchmarkClusterSteadyFleet|BenchmarkControllerTick' -benchtime=1x -timeout 10m .
	$(GO) test -run 'TestFeedbackControllerBeatsStatic' -count=1 ./internal/experiments
	$(GO) test -run 'TestControllerStaticIdentity' -count=1 ./internal/sim
	$(GO) test -run 'TestRegistryGolden' -count=1 ./internal/experiments

clean:
	$(GO) clean ./...
