# Developer entry points. Everything here is plain go tooling; there are
# no external dependencies.

GO ?= go

.PHONY: all build vet test race bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The experiment
# fan-out (internal/parallel) is the main subject: every multi-run
# experiment must stay data-race-free at any worker count.
race:
	$(GO) test -race ./...

# bench runs the hot-path benchmark suite with allocation stats and
# records the results in BENCH_<date>.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

clean:
	$(GO) clean ./...
