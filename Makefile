# Developer entry points. Everything here is plain go tooling; there are
# no external dependencies.

GO ?= go

.PHONY: all build vet test race fuzz bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 10m ./...

# race runs the full suite under the race detector. The experiment
# fan-out (internal/parallel) is the main subject: every multi-run
# experiment must stay data-race-free at any worker count.
race:
	$(GO) test -race -timeout 20m ./...

# fuzz runs a short smoke of each fuzz target (one package per -fuzz
# invocation, as the go tool requires): the job-file and fault-plan
# parsers must never crash on arbitrary input.
fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -timeout 5m ./internal/jobfile
	$(GO) test -fuzz=Fuzz -fuzztime=10s -timeout 5m ./internal/fault

# bench runs the hot-path benchmark suite with allocation stats and
# records the results in BENCH_<date>.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

clean:
	$(GO) clean ./...
