package cmpqos

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeAdmissionFlow(t *testing.T) {
	node := NewNode(PaperNodeCapacity())
	tw := int64(1_000_000)
	dec := node.Admit(Request{
		JobID:   1,
		Target:  RUM{Resources: PresetMedium(), MaxWallClock: tw, Deadline: 3 * tw},
		Mode:    Strict(),
		Arrival: 0,
	})
	if !dec.Accepted {
		t.Fatalf("admission failed: %s", dec.Reason)
	}
	// Non-convertible targets are rejected (the paper's Definition 1).
	dec = node.Admit(Request{JobID: 2, Target: OPM{IPC: 0.25}, Mode: Strict()})
	if dec.Accepted {
		t.Error("OPM target must be rejected")
	}
	if !strings.Contains(dec.Reason, "not convertible") {
		t.Errorf("reason = %q", dec.Reason)
	}
}

func TestFacadeCluster(t *testing.T) {
	a := NewNode(PaperNodeCapacity())
	b := NewNode(PaperNodeCapacity())
	cl := NewCluster(a, b)
	tw := int64(1_000_000)
	for i := 0; i < 4; i++ {
		node, dec := cl.Submit(Request{
			JobID:   i,
			Target:  RUM{Resources: PresetMedium(), MaxWallClock: tw, Deadline: 3 * tw},
			Mode:    Strict(),
			Arrival: 0,
		})
		if !dec.Accepted {
			t.Fatalf("job %d rejected: %s", i, dec.Reason)
		}
		if dec.Start != 0 {
			t.Errorf("job %d start = %d; two nodes fit four immediate jobs", i, dec.Start)
		}
		_ = node
	}
}

func TestFacadeSimulate(t *testing.T) {
	cfg := NewSimConfig(Hybrid2, SingleWorkload("bzip2"))
	cfg.JobInstr = 5_000_000
	cfg.StealIntervalInstr = 250_000
	rep, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 10 || rep.DeadlineHitRate != 1.0 {
		t.Errorf("jobs=%d hit=%v", len(rep.Jobs), rep.DeadlineHitRate)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Benchmarks()) != 15 {
		t.Error("expected fifteen benchmark profiles")
	}
	if _, ok := BenchmarkByName("bzip2"); !ok {
		t.Error("bzip2 missing")
	}
	if len(Mix1().Jobs) != 10 || len(Mix2().Jobs) != 10 {
		t.Error("mixes must have ten jobs")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 12 {
		t.Errorf("registry has %d experiments", len(Experiments()))
	}
	var buf bytes.Buffer
	if err := RunExperiment("fig1", ExperimentOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("fig1 output missing title")
	}
	if err := RunExperiment("nonesuch", ExperimentOptions{}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeModes(t *testing.T) {
	if Strict().Reserves() != true || Opportunistic().Reserves() != false {
		t.Error("mode reservation semantics wrong")
	}
	if Elastic(0.05).String() != "Elastic(5%)" {
		t.Error("elastic naming wrong")
	}
}

func TestFacadeClusterSimulation(t *testing.T) {
	cfg := ClusterSimConfig{
		Nodes:        2,
		Node:         NewSimConfig(Hybrid2, SingleWorkload("bzip2")),
		AcceptTarget: 20,
	}
	cfg.Node.JobInstr = 5_000_000
	cfg.Node.StealIntervalInstr = 250_000
	rep, err := SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 20 || rep.DeadlineHitRate != 1.0 {
		t.Errorf("accepted=%d hit=%v", rep.Accepted, rep.DeadlineHitRate)
	}
}

func TestFacadePhases(t *testing.T) {
	p, _ := BenchmarkByName("bzip2")
	ph := p.WithPhases(Phase{Until: 0.5, MPIScale: 0.5}, Phase{Until: 1, MPIScale: 1})
	if ph.PhaseScale(0.25) != 0.5 {
		t.Error("phase scale wrong through the facade")
	}
}
