// Command qosload is the speedtest-style load harness for the qosd
// admission daemon: it fires a configurable mix of submissions from a
// concurrent worker pool (with retry, exponential backoff, and jitter),
// then reports admission throughput and tail latency per case.
//
//	qosload -url http://127.0.0.1:8723 -n 2000 -c 16
//
// Chaos mode supervises its own daemon and SIGKILLs it mid-load at
// seeded, reproducible instants, restarting it on the same state
// directory each time:
//
//	qosload -chaos -qosd ./qosd -dir /tmp/qosd-state -n 2000 -kills 3
//
// After the run it audits the recovered daemon against every
// acknowledged grant: a grant the client holds an ack for must still be
// admitted (same node, same reservation) unless it was cancelled, and
// no job may be admitted twice. Exit code 4 (unavailable) means the
// daemon refused or never answered the entire run — distinct from a
// harness failure (1) or a lost-grant audit failure (also 1, with
// detail on stderr).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"cmpqos/internal/cli"
	"cmpqos/internal/fault"
	"cmpqos/internal/load"
)

const prog = "qosload"

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8723", "base URL of the daemon")
		n         = flag.Int("n", 1000, "total submissions")
		conc      = flag.Int("c", 8, "concurrent workers")
		mix       = flag.String("mix", "strict,elastic,opportunistic", "comma-separated modes to rotate through")
		cores     = flag.Int("cores", 1, "cores per request")
		ways      = flag.Int("ways", 4, "L2 ways per request")
		tw        = flag.Int64("tw", 1_000_000, "cycles reserved per admission")
		deadline  = flag.Int64("deadline-in", 4_000_000_000, "cycles from arrival to deadline")
		cancel    = flag.Bool("cancel", true, "cancel each admission immediately (steady-state churn; required for sustained load)")
		retries   = flag.Int("retries", 3, "extra attempts after a shed or transport failure")
		waitMS    = flag.Int64("wait-ms", 50, "per-request queue-wait budget sent to the daemon")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-attempt HTTP timeout")
		seed      = flag.Int64("seed", 1, "seed for backoff jitter and chaos kill times")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		negotiate = flag.Bool("negotiate", false, "opt submissions in to the daemon's mode ladder")

		chaos = flag.Bool("chaos", false, "supervise a daemon and SIGKILL it mid-load")
		qosd  = flag.String("qosd", "", "with -chaos: path to the qosd binary")
		dir   = flag.String("dir", "", "with -chaos: daemon state directory")
		addr  = flag.String("addr", "127.0.0.1:8723", "with -chaos: daemon listen address")
		kills = flag.Int("kills", 2, "with -chaos: SIGKILLs over the run")
		dargs = flag.String("qosd-args", "", "with -chaos: extra space-separated qosd flags")
	)
	flag.Parse()

	cases := buildCases(*mix, *cores, *ways, *tw, *deadline, *negotiate)
	if len(cases) == 0 {
		cli.Usage(prog, "empty -mix %q", *mix)
	}
	cfg := load.Config{
		BaseURL:     *url,
		Requests:    *n,
		Concurrency: *conc,
		Timeout:     *timeout,
		Retries:     *retries,
		Seed:        *seed,
		Cancel:      *cancel,
		WaitMS:      *waitMS,
	}

	if *chaos {
		runChaos(cases, cfg, *qosd, *dir, *addr, *kills, *seed, *dargs, *jsonOut)
		return
	}

	rep, err := load.Run(context.Background(), cases, cfg)
	if err != nil {
		cli.Fail(prog, err)
	}
	printReport(rep, *jsonOut)
	os.Exit(exitFor(rep))
}

func buildCases(mix string, cores, ways int, tw, deadline int64, negotiate bool) []load.Case {
	var cases []load.Case
	for _, m := range strings.Split(mix, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		c := load.Case{Name: m, Mode: m, Cores: cores, Ways: ways, Negotiate: negotiate}
		switch m {
		case "strict":
			c.TW, c.DeadlineIn = tw, deadline
		case "elastic":
			c.Slack, c.TW, c.DeadlineIn = 0.05, tw, deadline
		case "opportunistic":
			// Scavenger: no reservation, no deadline.
		default:
			cli.Usage(prog, "unknown mode %q in -mix", m)
		}
		cases = append(cases, c)
	}
	return cases
}

// exitFor maps a report to the documented exit codes: 4 when the
// daemon refused or never answered everything, 0 otherwise.
func exitFor(rep *load.Report) int {
	if rep.Admitted == 0 && rep.Rejected == 0 && rep.Shed+rep.Unavailable > 0 {
		return cli.ExitUnavailable
	}
	return cli.ExitOK
}

func printReport(rep *load.Report, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("ran %v: %d admitted (%.1f/s), %d rejected, %d shed, %d unavailable, %d conflicts\n",
		rep.Duration.Round(time.Millisecond), rep.Admitted, rep.AdmitPerSec,
		rep.Rejected, rep.Shed, rep.Unavailable, rep.Conflicts)
	fmt.Println("case            sent  admit  degr  rej   shed  unavail      p50      p99     p999")
	for _, c := range rep.Cases {
		fmt.Printf("%-15s %5d  %5d %5d %4d  %5d  %7d  %7s  %7s  %7s\n",
			c.Name, c.Sent, c.Admitted, c.Degraded, c.Rejected, c.Shed, c.Unavailable,
			shortDur(c.P50), shortDur(c.P99), shortDur(c.P999))
	}
}

func shortDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}

// ---- chaos mode ----

// daemon supervises one qosd process.
type daemon struct {
	bin, dir, addr string
	extra          []string
	mu             sync.Mutex
	cmd            *exec.Cmd
}

func (d *daemon) start() error {
	args := append([]string{"-addr", d.addr, "-dir", d.dir}, d.extra...)
	cmd := exec.Command(d.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	go cmd.Wait() // reap; exit status is irrelevant (we SIGKILL it)
	d.mu.Lock()
	d.cmd = cmd
	d.mu.Unlock()
	return nil
}

func (d *daemon) kill() {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill() // SIGKILL: no drain, no flush beyond the WAL
	}
}

func waitHealthy(base string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not healthy within %v", base, within)
}

func runChaos(cases []load.Case, cfg load.Config, bin, dir, addr string, kills int, seed int64, extraArgs string, asJSON bool) {
	if bin == "" || dir == "" {
		cli.Usage(prog, "-chaos needs -qosd and -dir")
	}
	base := "http://" + addr
	cfg.BaseURL = base
	d := &daemon{bin: bin, dir: dir, addr: addr, extra: strings.Fields(extraArgs)}
	if err := d.start(); err != nil {
		cli.Fail(prog, err)
	}
	defer d.kill()
	if err := waitHealthy(base, 10*time.Second); err != nil {
		cli.Fail(prog, err)
	}

	// Estimate the load duration from a conservative per-request cost so
	// the seeded kill schedule lands inside the run.
	horizon := time.Duration(cfg.Requests/max(1, cfg.Concurrency)) * 2 * time.Millisecond
	if horizon < time.Second {
		horizon = time.Second
	}
	schedule := fault.KillTimes(seed, kills, horizon)

	done := make(chan struct{})
	var rep *load.Report
	var runErr error
	start := time.Now()
	go func() {
		defer close(done)
		rep, runErr = load.Run(context.Background(), cases, cfg)
	}()
	for _, at := range schedule {
		select {
		case <-done:
		case <-time.After(time.Until(start.Add(at))):
		}
		if isDone(done) {
			break
		}
		fmt.Fprintf(os.Stderr, "%s: chaos: SIGKILL daemon at t=%v\n", prog, time.Since(start).Round(time.Millisecond))
		d.kill()
		if err := d.start(); err != nil {
			cli.Fail(prog, err)
		}
		if err := waitHealthy(base, 10*time.Second); err != nil {
			cli.Fail(prog, err)
		}
	}
	<-done
	if runErr != nil {
		cli.Fail(prog, runErr)
	}

	// One final crash+recovery before the audit: whatever the daemon
	// holds now must be exactly what the WAL can reproduce.
	d.kill()
	if err := d.start(); err != nil {
		cli.Fail(prog, err)
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		cli.Fail(prog, err)
	}
	if err := auditGrants(base, rep.Grants); err != nil {
		d.kill()
		fmt.Fprintf(os.Stderr, "%s: chaos audit FAILED: %v\n", prog, err)
		os.Exit(cli.ExitFailure)
	}
	// os.Exit below skips the deferred kill; stop the daemon explicitly.
	d.kill()
	live := 0
	for _, g := range rep.Grants {
		if !g.Cancelled {
			live++
		}
	}
	fmt.Fprintf(os.Stderr, "%s: chaos audit ok: %d acked grants (%d live) all survived %d kills, no double admissions\n",
		prog, len(rep.Grants), live, kills+1)
	printReport(rep, asJSON)
	os.Exit(exitFor(rep))
}

func isDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// auditGrants cross-checks the client's acked grants against the
// recovered daemon's snapshot: acked live grants must still be admitted
// on the same node under the same reservation, cancelled ones must be
// gone, and no job may appear twice.
func auditGrants(base string, grants []load.Grant) error {
	resp, err := http.Get(base + "/v1/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var snap struct {
		Jobs map[string]struct {
			Node  int `json:"node"`
			ResID int `json:"res_id"`
		} `json:"jobs"`
		Nodes []struct {
			Reservations []struct {
				ID    int `json:"ID"`
				JobID int `json:"JobID"`
			} `json:"reservations"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}
	resCount := map[[2]int]int{} // (node, resID) -> count
	jobRes := map[int][]int{}    // jobID -> reservation IDs anywhere
	for ni, node := range snap.Nodes {
		for _, r := range node.Reservations {
			resCount[[2]int{ni, r.ID}]++
			jobRes[r.JobID] = append(jobRes[r.JobID], r.ID)
		}
	}
	sort.Slice(grants, func(i, j int) bool { return grants[i].JobID < grants[j].JobID })
	for _, g := range grants {
		e, live := snap.Jobs[fmt.Sprint(g.JobID)]
		if g.Cancelled {
			if live {
				return fmt.Errorf("job %d: cancel was acked but the job is still admitted", g.JobID)
			}
			continue
		}
		if !live {
			if g.CancelUnknown {
				// The cancel's answer was lost mid-crash; it may have been
				// logged before the kill, so "gone" is a legal outcome.
				continue
			}
			return fmt.Errorf("job %d: grant (node %d, res %d) was acked but lost in recovery", g.JobID, g.Node, g.ResID)
		}
		if e.Node != g.Node || e.ResID != g.ResID {
			return fmt.Errorf("job %d: acked on node %d res %d, recovered on node %d res %d",
				g.JobID, g.Node, g.ResID, e.Node, e.ResID)
		}
		if g.ResID != 0 {
			// The reservation may have aged out of the timeline (its window
			// passed and was pruned) — absence is legal, duplication never.
			if c := resCount[[2]int{g.Node, g.ResID}]; c > 1 {
				return fmt.Errorf("job %d: reservation %d on node %d appears %d times", g.JobID, g.ResID, g.Node, c)
			}
			if len(jobRes[g.JobID]) > 1 {
				return fmt.Errorf("job %d: double-admitted — %d reservations: %v", g.JobID, len(jobRes[g.JobID]), jobRes[g.JobID])
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
