// Command qostrace renders Figure-7-style execution traces for any
// workload and configuration.
//
// Usage:
//
//	qostrace -policy autodown -workload bzip2
//	qostrace -policy hybrid2 -workload mix1 -width 100 -events
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmpqos/internal/sim"
	"cmpqos/internal/workload"
)

func main() {
	var (
		policy = flag.String("policy", "allstrict", "allstrict|hybrid1|hybrid2|autodown|equalpart")
		wl     = flag.String("workload", "bzip2", "benchmark name, mix1, or mix2")
		width  = flag.Int("width", 80, "gantt width in columns")
		instr  = flag.Int64("instr", 20_000_000, "instructions per job")
		seed   = flag.Int64("seed", 1, "random seed")
		events = flag.Bool("events", false, "also dump the raw event log")
		series = flag.Bool("series", false, "also print per-epoch telemetry")
		asJSON = flag.Bool("json", false, "emit the full report as JSON instead of text")
	)
	flag.Parse()

	pol, ok := parsePolicy(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "qostrace: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	comp, err := parseWorkload(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qostrace:", err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig(pol, comp)
	cfg.JobInstr = *instr
	cfg.StealIntervalInstr = *instr / 100
	cfg.Seed = *seed
	cfg.RecordSeries = *series
	r, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qostrace:", err)
		os.Exit(1)
	}
	rep, err := r.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qostrace:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "qostrace:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s / %s — %d accepted jobs complete in %d cycles, hit rate %.0f%%\n\n",
		rep.Policy, rep.Workload, len(rep.Jobs), rep.TotalCycles, rep.DeadlineHitRate*100)
	fmt.Print(rep.Gantt(*width))
	if *events {
		fmt.Println("\nevent log:")
		for _, e := range rep.Recorder.Events() {
			fmt.Printf("%14d  job %-5d %s\n", e.Cycle, e.JobID, e.Kind)
		}
	}
	if *series {
		fmt.Println("\ntelemetry (cycle, running, waiting, reserved-ways, opp-jobs, bus-util):")
		for _, p := range rep.Series {
			fmt.Printf("%14d  %3d %3d %3d %3d  %.3f\n",
				p.Cycle, p.Running, p.Waiting, p.ReservedWays, p.OppJobs, p.BusUtil)
		}
	}
}

func parsePolicy(s string) (sim.Policy, bool) {
	switch strings.ToLower(s) {
	case "allstrict", "all-strict":
		return sim.AllStrict, true
	case "hybrid1", "hybrid-1":
		return sim.Hybrid1, true
	case "hybrid2", "hybrid-2":
		return sim.Hybrid2, true
	case "autodown", "all-strict+autodown":
		return sim.AllStrictAutoDown, true
	case "equalpart":
		return sim.EqualPart, true
	}
	return 0, false
}

func parseWorkload(s string) (workload.Composition, error) {
	switch strings.ToLower(s) {
	case "mix1", "mix-1":
		return workload.Mix1(), nil
	case "mix2", "mix-2":
		return workload.Mix2(), nil
	}
	if _, ok := workload.ByName(s); !ok {
		return workload.Composition{}, fmt.Errorf("unknown workload %q", s)
	}
	return workload.Single(s), nil
}
