// Command qostrace renders Figure-7-style execution traces for any
// workload and configuration.
//
// Usage:
//
//	qostrace -policy autodown -workload bzip2
//	qostrace -policy hybrid2 -workload mix1 -width 100 -events
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmpqos/internal/cli"
	"cmpqos/internal/sim"
	"cmpqos/internal/workload"
)

const prog = "qostrace"

func main() {
	var (
		policy    = flag.String("policy", "allstrict", "allstrict|hybrid1|hybrid2|autodown|equalpart")
		wl        = flag.String("workload", "bzip2", "benchmark name, mix1, or mix2")
		width     = flag.Int("width", 80, "gantt width in columns")
		instr     = flag.Int64("instr", 20_000_000, "instructions per job")
		seed      = flag.Int64("seed", 1, "random seed")
		events    = flag.Bool("events", false, "also dump the raw event log")
		series    = flag.Bool("series", false, "also print per-epoch telemetry")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON instead of text")
		faults    = flag.String("faults", "", "fault plan file, or a fault rate (events per gigacycle) to generate one")
		faultSeed = flag.Int64("fault-seed", 1, "seed for a generated -faults rate plan")
		sched     = flag.String("sched", "", "core scheduler policy: "+cli.PolicyList(sim.SchedulerNames())+" (empty = policy default)")
		alloc     = flag.String("alloc", "", "L2 way allocator policy: "+cli.PolicyList(sim.AllocatorNames())+" (empty = policy default)")
		admit     = flag.String("admit", "", "admission placement policy: "+cli.PolicyList(sim.AdmissionNames())+" (empty = fcfs)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (e.g. 30s; 0 = no limit)")
	)
	flag.Parse()
	if err := sim.ValidatePolicyNames(*sched, *alloc, *admit); err != nil {
		cli.Usage(prog, "%v", err)
	}

	pol, ok := parsePolicy(*policy)
	if !ok {
		cli.Usage(prog, "unknown policy %q", *policy)
	}
	comp, err := parseWorkload(*wl)
	if err != nil {
		cli.Usage(prog, "%v", err)
	}
	cfg := sim.DefaultConfig(pol, comp)
	cfg.JobInstr = *instr
	cfg.StealIntervalInstr = *instr / 100
	cfg.Seed = *seed
	cfg.RecordSeries = *series
	cfg.Scheduler = *sched
	cfg.Allocator = *alloc
	cfg.Admission = *admit
	cfg.Faults, err = cli.ParseFaultPlan(*faults, *faultSeed, cfg.Cores, cfg.L2.Ways)
	if err != nil {
		cli.Fail(prog, err)
	}
	r, err := sim.New(cfg)
	if err != nil {
		cli.Fail(prog, err)
	}
	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	rep, err := r.RunContext(ctx)
	if err != nil {
		cli.Fail(prog, err)
	}
	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			cli.Fail(prog, err)
		}
		return
	}
	fmt.Printf("%s / %s — %d accepted jobs complete in %d cycles, hit rate %.0f%%\n\n",
		rep.Policy, rep.Workload, len(rep.Jobs), rep.TotalCycles, rep.DeadlineHitRate*100)
	fmt.Print(rep.Gantt(*width))
	if *events {
		fmt.Println("\nevent log:")
		for _, e := range rep.Recorder.Events() {
			fmt.Printf("%14d  job %-5d %s\n", e.Cycle, e.JobID, e.Kind)
		}
	}
	if *series {
		fmt.Println("\ntelemetry (cycle, running, waiting, reserved-ways, opp-jobs, bus-util):")
		for _, p := range rep.Series {
			fmt.Printf("%14d  %3d %3d %3d %3d  %.3f\n",
				p.Cycle, p.Running, p.Waiting, p.ReservedWays, p.OppJobs, p.BusUtil)
		}
	}
}

func parsePolicy(s string) (sim.Policy, bool) {
	switch strings.ToLower(s) {
	case "allstrict", "all-strict":
		return sim.AllStrict, true
	case "hybrid1", "hybrid-1":
		return sim.Hybrid1, true
	case "hybrid2", "hybrid-2":
		return sim.Hybrid2, true
	case "autodown", "all-strict+autodown":
		return sim.AllStrictAutoDown, true
	case "equalpart":
		return sim.EqualPart, true
	}
	return 0, false
}

func parseWorkload(s string) (workload.Composition, error) {
	switch strings.ToLower(s) {
	case "mix1", "mix-1":
		return workload.Mix1(), nil
	case "mix2", "mix-2":
		return workload.Mix2(), nil
	}
	if _, ok := workload.ByName(s); !ok {
		return workload.Composition{}, fmt.Errorf("unknown workload %q", s)
	}
	return workload.Single(s), nil
}
