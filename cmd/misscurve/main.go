// Command misscurve probes miss-ratio-vs-ways curves for the benchmark
// profiles, through the real partitioned cache model (synthetic trace)
// and/or from the calibrated tables, and prints them side by side.
//
// Usage:
//
//	misscurve                 # all fifteen benchmarks, calibrated curves
//	misscurve -bench bzip2 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpqos/internal/cache"
	"cmpqos/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to probe (default: all)")
		doTrace = flag.Bool("trace", false, "also measure through the real cache model")
		warmup  = flag.Int("warmup", 250_000, "trace warmup accesses per allocation")
		measure = flag.Int("measure", 250_000, "trace measured accesses per allocation")
		dump    = flag.String("dump", "", "record the benchmark's synthetic trace to this file and exit")
		dumpN   = flag.Int("dump-n", 1_000_000, "accesses to record with -dump")
		replay  = flag.String("replay", "", "probe a recorded trace file instead of a benchmark")
	)
	flag.Parse()

	cfg := cache.Config{SizeBytes: 2 << 20, Ways: 16, BlockSize: 64, Owners: 1, HitCycles: 10}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misscurve:", err)
			os.Exit(1)
		}
		addrs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "misscurve:", err)
			os.Exit(1)
		}
		curve := cache.ProbeMissCurve(cfg, func() cache.AddrStream {
			return workload.NewReplay(addrs)
		}, *warmup, *measure)
		fmt.Printf("replayed %s (%d accesses)\n  ways:  ", *replay, len(addrs))
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6d", w)
		}
		fmt.Printf("\n  trace: ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6.3f", curve.At(w))
		}
		fmt.Println()
		return
	}
	if *dump != "" {
		if *bench == "" {
			fmt.Fprintln(os.Stderr, "misscurve: -dump needs -bench")
			os.Exit(2)
		}
		p, ok := workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "misscurve: unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misscurve:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, p.NewStream(42, 0), *dumpN); err != nil {
			fmt.Fprintln(os.Stderr, "misscurve:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d accesses of %s to %s\n", *dumpN, *bench, *dump)
		return
	}

	var profiles []workload.Profile
	if *bench == "" {
		profiles = workload.Profiles()
	} else {
		p, ok := workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "misscurve: unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		profiles = []workload.Profile{p}
	}

	for _, p := range profiles {
		fmt.Printf("%s (%s, group %d: %s)\n", p.Name, p.InputSet, int(p.Group), p.Group)
		fmt.Printf("  ways:       ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6d", w)
		}
		fmt.Printf("\n  calibrated: ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6.3f", p.MissRatio(w))
		}
		fmt.Println()
		if *doTrace {
			curve := p.ProbeCurve(cfg, *warmup, *measure)
			fmt.Printf("  trace:      ")
			for w := 1; w <= 16; w++ {
				fmt.Printf("%6.3f", curve.At(w))
			}
			fmt.Println()
		}
	}
}
