// Command misscurve probes miss-ratio-vs-ways curves for the benchmark
// profiles, through the real partitioned cache model (synthetic trace)
// and/or from the calibrated tables, and prints them side by side.
//
// Two profilers are available for the measured curves:
//
//   - single-pass (default): the one-pass Mattson stack-distance
//     profiler — a single stream traversal yields the exact curve at
//     every way allocation (bit-exact with replay under LRU, ~W× less
//     work). -sample-every=N profiles every Nth set only (the paper's
//     §4.3 sampling; N a power of two), multiplying the saving again.
//   - replay: the legacy path — one full stream replay through a fresh
//     partitioned cache per way allocation.
//
// Usage:
//
//	misscurve                 # all fifteen benchmarks, calibrated curves
//	misscurve -bench bzip2 -trace
//	misscurve -bench bzip2 -trace -profiler replay      # legacy W-pass probe
//	misscurve -bench bzip2 -trace -sample-every 8       # sampled single-pass
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpqos/internal/cache"
	"cmpqos/internal/cli"
	"cmpqos/internal/workload"
)

const prog = "misscurve"

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark to probe (default: all)")
		doTrace  = flag.Bool("trace", false, "also measure through the real cache model")
		warmup   = flag.Int("warmup", 250_000, "trace warmup accesses per allocation")
		measure  = flag.Int("measure", 250_000, "trace measured accesses per allocation")
		profiler = flag.String("profiler", "single-pass", "curve profiler: single-pass (one-pass stack-distance) or replay (one stream replay per way allocation)")
		every    = flag.Int("sample-every", 1, "profile every Nth cache set (power of two dividing the set count; 1 = all sets; single-pass only)")
		dump     = flag.String("dump", "", "record the benchmark's synthetic trace to this file and exit")
		dumpN    = flag.Int("dump-n", 1_000_000, "accesses to record with -dump")
		replay   = flag.String("replay", "", "probe a recorded trace file instead of a benchmark")
	)
	flag.Parse()

	switch *profiler {
	case "single-pass", "replay":
	default:
		cli.Usage(prog, "unknown -profiler %q (want single-pass or replay)", *profiler)
	}
	if *profiler == "replay" && *every != 1 {
		cli.Usage(prog, "-sample-every needs -profiler single-pass")
	}

	cfg := cache.Config{SizeBytes: 2 << 20, Ways: 16, BlockSize: 64, Owners: 1, HitCycles: 10}
	// probe measures one curve with the selected profiler; mk must
	// return a fresh, deterministic stream per call (the replay profiler
	// calls it once per way allocation, single-pass exactly once).
	probe := func(mk func() cache.AddrStream) cache.MissCurve {
		if *profiler == "replay" {
			return cache.ProbeMissCurve(cfg, mk, *warmup, *measure)
		}
		return cache.SinglePassMissCurveSampled(cfg, mk(), *warmup, *measure, *every)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			cli.Fail(prog, err)
		}
		addrs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			cli.Fail(prog, err)
		}
		curve := probe(func() cache.AddrStream {
			return workload.NewReplay(addrs)
		})
		fmt.Printf("replayed %s (%d accesses, %s profiler)\n  ways:  ", *replay, len(addrs), *profiler)
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6d", w)
		}
		fmt.Printf("\n  trace: ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6.3f", curve.At(w))
		}
		fmt.Println()
		return
	}
	if *dump != "" {
		if *bench == "" {
			cli.Usage(prog, "-dump needs -bench")
		}
		p, ok := workload.ByName(*bench)
		if !ok {
			cli.Usage(prog, "unknown benchmark %q", *bench)
		}
		f, err := os.Create(*dump)
		if err != nil {
			cli.Fail(prog, err)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, p.NewStream(42, 0), *dumpN); err != nil {
			cli.Fail(prog, err)
		}
		fmt.Printf("recorded %d accesses of %s to %s\n", *dumpN, *bench, *dump)
		return
	}

	var profiles []workload.Profile
	if *bench == "" {
		profiles = workload.Profiles()
	} else {
		p, ok := workload.ByName(*bench)
		if !ok {
			cli.Usage(prog, "unknown benchmark %q", *bench)
		}
		profiles = []workload.Profile{p}
	}

	for _, p := range profiles {
		fmt.Printf("%s (%s, group %d: %s)\n", p.Name, p.InputSet, int(p.Group), p.Group)
		fmt.Printf("  ways:       ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6d", w)
		}
		fmt.Printf("\n  calibrated: ")
		for w := 1; w <= 16; w++ {
			fmt.Printf("%6.3f", p.MissRatio(w))
		}
		fmt.Println()
		if *doTrace {
			p := p
			curve := probe(func() cache.AddrStream { return p.NewStream(42, 0) })
			label := "trace:     "
			if *every > 1 {
				label = fmt.Sprintf("trace/%-4d", *every)
			}
			fmt.Printf("  %s ", label)
			for w := 1; w <= 16; w++ {
				fmt.Printf("%6.3f", curve.At(w))
			}
			fmt.Println()
		}
	}
}
