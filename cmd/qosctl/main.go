// Command qosctl schedules a batch-job file onto a cluster of simulated
// CMP nodes through the QoS framework's admission controllers, and
// prints the resulting schedule — the LSBatch-style front door the paper
// grounds its RUM targets in (§3.2).
//
// Usage:
//
//	qosctl jobs.qos
//	qosctl -negotiate -clock 2GHz jobs.qos
//
// A job file looks like:
//
//	node count=2 cores=4 ways=16
//	job name=db    bench=bzip2 mode=strict preset=medium tw=500ms deadline=2.0
//	job name=batch bench=gobmk mode=elastic slack=5% ways=7 tw=300ms deadline=3.0
//	job name=scav  bench=milc  mode=opportunistic ways=4 tw=200ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cmpqos/internal/cli"
	"cmpqos/internal/fault"
	"cmpqos/internal/jobfile"
	"cmpqos/internal/qos"
	"cmpqos/internal/sim"
	"cmpqos/internal/workload"
)

const prog = "qosctl"

func main() {
	var (
		negotiate = flag.Bool("negotiate", false, "retry rejected Strict jobs with weaker modes")
		clock     = flag.String("clock", "2GHz", "node clock frequency (e.g. 2GHz, 1.5GHz)")
		simulate  = flag.Bool("simulate", false, "run the jobs through the CMP simulator end to end")
		instr     = flag.Int64("instr", 20_000_000, "instructions per job when simulating")
		seeds     = flag.Int("seeds", 1, "with -simulate: run this many seeds of the job file")
		parallel  = flag.Int("parallel", 1, "with -simulate: worker bound for the seed runs (0 = one per CPU)")
		runCache  = flag.Bool("runcache", true, "with -simulate: memoize repeated simulation configs")
		eventSkip = flag.Bool("eventskip", true, "with -simulate: fast-forward steady-state epochs in closed form (bit-identical either way)")
		faults    = flag.String("faults", "", "with -simulate: fault plan file, or a fault rate (events per gigacycle) to generate one; merged with the job file's fault directives")
		faultSeed = flag.Int64("fault-seed", 1, "seed for a generated -faults rate plan")
		sched     = flag.String("sched", "", "with -simulate: core scheduler policy: "+cli.PolicyList(sim.SchedulerNames())+" (empty = policy default)")
		alloc     = flag.String("alloc", "", "with -simulate: L2 way allocator policy: "+cli.PolicyList(sim.AllocatorNames())+" (empty = policy default)")
		admit     = flag.String("admit", "", "with -simulate: admission placement policy: "+cli.PolicyList(sim.AdmissionNames())+" (empty = fcfs)")
		ctrl      = flag.String("ctrl", "", "with -simulate: feedback controller: "+cli.PolicyList(sim.ControllerNames())+" (empty = static)")
		dispatch  = flag.String("dispatch", "", "GAC placement strategy: bestfit|worstfit|oversub|locality (empty = bestfit)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (e.g. 30s; 0 = no limit)")
	)
	flag.Parse()
	if err := sim.ValidatePolicyNames(*sched, *alloc, *admit); err != nil {
		cli.Usage(prog, "%v", err)
	}
	if err := sim.ValidateControllerName(*ctrl); err != nil {
		cli.Usage(prog, "%v", err)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qosctl [-negotiate] [-clock 2GHz] <jobfile>")
		os.Exit(cli.ExitUsage)
	}
	hz, err := cli.ParseClock(*clock)
	if err != nil {
		cli.Usage(prog, "%v", err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		cli.Fail(prog, err)
	}
	defer f.Close()
	spec, err := jobfile.Parse(f)
	if err != nil {
		cli.Fail(prog, err)
	}

	if *simulate {
		plan, err := cli.ParseFaultPlan(*faults, *faultSeed, spec.NodeCapacity.Cores, spec.NodeCapacity.CacheWays)
		if err != nil {
			cli.Fail(prog, err)
		}
		runSimulation(spec, *instr, *seeds, *parallel, *runCache, !*eventSkip, plan, *timeout,
			pipelineNames{*sched, *alloc, *admit, *ctrl})
		return
	}

	nodes := make([]*qos.LAC, spec.NodeCount)
	for i := range nodes {
		nodes[i] = qos.NewLAC(spec.NodeCapacity)
	}
	gac := qos.NewGAC(nodes...)
	if err := gac.SetStrategy(*dispatch); err != nil {
		cli.Usage(prog, "%v", err)
	}

	fmt.Printf("cluster: %d node(s) of %v at %s\n\n", spec.NodeCount, spec.NodeCapacity, *clock)
	fmt.Println("job        mode            node   start(ms)  reserved(ms)      outcome")
	accepted, rejected := 0, 0
	for i, req := range spec.Requests(hz) {
		name := spec.Jobs[i].Name
		if name == "" {
			name = fmt.Sprintf("job-%d", req.JobID)
		}
		var node int
		var mode qos.Mode
		var dec qos.Decision
		if *negotiate {
			node, mode, dec = gac.SubmitOrNegotiate(req, 0.05)
		} else {
			mode = req.Mode
			node, dec = gac.Submit(req)
		}
		if !dec.Accepted {
			rejected++
			fmt.Printf("%-10s %-15s %4s  %9s  %12s      REJECTED: %s\n",
				name, req.Mode.String(), "-", "-", "-", dec.Reason)
			continue
		}
		accepted++
		rum := req.Target.(qos.RUM)
		resv := "-"
		if mode.Reserves() {
			resv = fmt.Sprintf("%.1f", float64(mode.ReservationLength(rum.MaxWallClock))/hz*1e3)
		}
		outcome := "accepted"
		if dec.AutoDowngraded {
			outcome = "accepted (auto-downgraded)"
		} else if mode != req.Mode {
			outcome = "accepted (negotiated)"
		}
		fmt.Printf("%-10s %-15s %4d  %9.1f  %12s      %s\n",
			name, mode.String(), node, float64(dec.Start)/hz*1e3, resv, outcome)
	}
	fmt.Printf("\n%d accepted, %d rejected\n", accepted, rejected)
	for i, n := range nodes {
		fmt.Printf("node %d reservations:\n", i)
		tl := n.Timeline()
		for _, r := range tl.Reservations() {
			fmt.Printf("  job %-3d %v  [%8.1f ms .. %8.1f ms)\n",
				r.JobID, r.Vec, float64(r.Start)/hz*1e3, float64(r.End)/hz*1e3)
		}
		if h := tl.Horizon(0); h > 0 {
			fmt.Print(tl.Render(0, h, 64))
		}
	}
	if rejected > 0 {
		os.Exit(cli.ExitRejected)
	}
}

// runSimulation executes the job file's submissions through the CMP
// simulator (Hybrid-2 semantics: every mode in the file is honored) and
// prints the resulting report and execution trace. With seeds > 1 the
// same script runs once per seed — the runs are independent and fan out
// across the worker bound (0 = one per CPU), the qosctl face of the
// qossim -parallel flag.
// pipelineNames carries the -sched/-alloc/-admit/-ctrl selections into
// the simulated configurations.
type pipelineNames struct {
	scheduler, allocator, admission, controller string
}

func runSimulation(spec *jobfile.Spec, instr int64, seeds, workers int, useCache, noSkip bool, plan fault.Plan, timeout time.Duration, pipe pipelineNames) {
	if seeds < 1 {
		seeds = 1
	}
	if workers == 0 {
		workers = -1 // flag value 0 means "all CPUs"
	}
	var cfgs []sim.Config
	for s := 0; s < seeds; s++ {
		cfg := sim.DefaultConfig(sim.Hybrid2, workload.Composition{Name: "jobfile"})
		cfg.JobInstr = instr
		cfg.StealIntervalInstr = instr / 100
		if cfg.StealIntervalInstr < 1 {
			cfg.StealIntervalInstr = 1
		}
		cfg.Script = spec.Script(cfg.CPU.ClockHz)
		cfg.Faults = plan.Merge(spec.FaultPlan(cfg.CPU.ClockHz))
		if spec.NodeCapacity.Cores > 0 && spec.NodeCapacity.Cores <= cfg.L2.Owners {
			cfg.Cores = spec.NodeCapacity.Cores
		}
		cfg.Scheduler = pipe.scheduler
		cfg.Allocator = pipe.allocator
		cfg.Admission = pipe.admission
		cfg.Controller = pipe.controller
		cfg.DisableEventSkip = noSkip
		cfg.Seed += int64(s)
		cfgs = append(cfgs, cfg)
	}
	cache := sim.DefaultRunCache
	if !useCache {
		cache = nil
	}
	ctx, cancel := cli.Context(timeout)
	defer cancel()
	reps, err := sim.RunAllCached(ctx, workers, cache, cfgs)
	if err != nil {
		cli.Fail(prog, err)
	}
	for i, rep := range reps {
		if seeds > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("--- seed %d ---\n", cfgs[i].Seed)
		}
		fmt.Print(rep.Summary())
		fmt.Println()
		fmt.Print(rep.Gantt(72))
	}
}
