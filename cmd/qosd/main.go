// Command qosd runs the paper's §5 user-level admission controller as a
// long-lived daemon: submissions arrive over HTTP/JSON, every decision
// is write-ahead logged and fsynced before the client sees it, and the
// state directory recovers a kill -9 to the exact pre-crash admission
// state. Under overload the daemon sheds with 503 instead of queueing
// without bound, walking the same degradation ladder the simulator uses
// under faults (scavengers shed first, Strict renegotiated down).
//
// Usage:
//
//	qosd -addr :8723 -dir /var/lib/qosd -cores 4 -ways 16 -nodes 2
//
// SIGINT/SIGTERM drain gracefully: in-flight admissions finish, a final
// snapshot is persisted, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cmpqos/internal/cli"
	"cmpqos/internal/qos"
	"cmpqos/internal/server"
)

const prog = "qosd"

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8723", "listen address")
		dir       = flag.String("dir", "", "durable state directory (WAL + snapshots); required")
		cores     = flag.Int("cores", 4, "cores per node (fresh state directories only)")
		ways      = flag.Int("ways", 16, "L2 ways per node (fresh state directories only)")
		nodes     = flag.Int("nodes", 1, "CMP nodes fronted by the global admission controller")
		clock     = flag.String("clock", "2GHz", "node clock for stamping arrivals (e.g. 2GHz)")
		queue     = flag.Int("queue", 256, "admission queue bound; requests beyond it are shed with 503")
		wait      = flag.Duration("wait", 100*time.Millisecond, "cap on any request's queue-wait budget")
		degrade   = flag.Float64("degrade", 0.5, "queue fraction at which the shed ladder starts")
		maxSlack  = flag.Float64("max-slack", 0.05, "Elastic slack offered on the renegotiation rung")
		snapEvery = flag.Int("snapshot-every", 1024, "snapshot and rotate the WAL after this many records")
		walMax    = flag.Int64("wal-max-bytes", 0, "also snapshot and rotate once the WAL exceeds this many bytes (0 = no byte bound)")
		noSync    = flag.Bool("nosync", false, "skip the per-record fsync (benchmarks only: acked admits may be lost to a crash)")
		downgrade = flag.Bool("autodowngrade", false, "enable §3.4 automatic mode downgrade on the nodes")
	)
	flag.Parse()
	if *dir == "" {
		cli.Usage(prog, "-dir is required")
	}
	hz, err := cli.ParseClock(*clock)
	if err != nil {
		cli.Usage(prog, "%v", err)
	}

	s, err := server.New(server.Config{
		Dir:           *dir,
		Capacity:      qos.ResourceVector{Cores: *cores, CacheWays: *ways},
		Nodes:         *nodes,
		ClockHz:       hz,
		NoSync:        *noSync,
		SnapshotEvery: *snapEvery,
		WALMaxBytes:   *walMax,
		MaxInflight:   *queue,
		DegradeAt:     *degrade,
		MaxSlack:      *maxSlack,
		MaxWait:       *wait,
		AutoDowngrade: *downgrade,
	})
	if err != nil {
		cli.Fail(prog, err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "%s: serving on %s (state: %s)\n", prog, *addr, *dir)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		cli.Fail(prog, err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "%s: %v — draining\n", prog, got)
	case <-s.Drained():
		// Drained over HTTP (POST /v1/drain): just stop serving.
	}
	drainErr := s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Fail(prog, err)
	}
	if drainErr != nil {
		cli.Fail(prog, drainErr)
	}
}
