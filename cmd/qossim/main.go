// Command qossim regenerates the paper's tables and figures.
//
// Usage:
//
//	qossim -exp fig5                 # one experiment (table engine, paper scale)
//	qossim -exp all                  # every experiment
//	qossim -exp fig8 -engine trace   # trace-driven cache execution
//	qossim -exp fig7 -instr 20000000 # scaled-down jobs for quick runs
//	qossim -exp fig9 -parallel 8     # fan independent runs across 8 workers
//	qossim -exp all -parallel 0      # one worker per CPU
//	qossim -list                     # list experiments
//
// Multi-run experiments produce byte-identical tables at any -parallel
// setting; the flag only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cmpqos/internal/cli"
	"cmpqos/internal/experiments"
	"cmpqos/internal/sim"
)

const prog = "qossim"

func main() {
	var (
		exp       = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		engine    = flag.String("engine", "table", "execution engine: table or trace")
		instr     = flag.Int64("instr", 0, "instructions per job (0 = engine default)")
		seed      = flag.Int64("seed", 0, "random seed (0 = default)")
		parallel  = flag.Int("parallel", 1, "worker bound for independent simulation runs (0 = one per CPU)")
		list      = flag.Bool("list", false, "list available experiments")
		asCSV     = flag.Bool("csv", false, "emit machine-readable CSV instead of text tables")
		html      = flag.String("html", "", "write a single-file HTML report of ALL experiments to this path")
		runCache  = flag.Bool("runcache", true, "memoize repeated simulation configs across experiments")
		planCach  = flag.Bool("plancache", true, "reuse the epoch plan between QoS events inside the sim engine")
		eventSkip = flag.Bool("eventskip", true, "fast-forward steady-state epochs in closed form (bit-identical either way)")
		faultRate = flag.Float64("faults", 0, "fault rate in events per gigacycle for the faults experiment (0 = its default sweep)")
		faultSeed = flag.Int64("fault-seed", 0, "fault plan generator seed for the faults experiment (0 = default)")
		sched     = flag.String("sched", "", "core scheduler policy: "+cli.PolicyList(sim.SchedulerNames())+" (empty = policy default)")
		alloc     = flag.String("alloc", "", "L2 way allocator policy: "+cli.PolicyList(sim.AllocatorNames())+" (empty = policy default)")
		admit     = flag.String("admit", "", "admission placement policy: "+cli.PolicyList(sim.AdmissionNames())+" (empty = fcfs)")
		ctrl      = flag.String("ctrl", "", "feedback controller: "+cli.PolicyList(sim.ControllerNames())+" (empty = static, the open loop)")
		nodes     = flag.Int("nodes", 0, "cluster experiment: fleet mode at this node count (0 = legacy 1/2/4 scaling sweep)")
		jobs      = flag.Int("jobs", 0, "cluster fleet mode: total accepted jobs (0 = 10 per node)")
		dispatch  = flag.String("dispatch", "", "cluster dispatch policy: "+cli.PolicyList(sim.DispatcherNames())+" (empty = sweep all in fleet mode, bestfit otherwise)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (e.g. 2m; 0 = no limit)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this path")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken at exit) to this path")
	)
	flag.Parse()
	if err := sim.ValidatePolicyNames(*sched, *alloc, *admit); err != nil {
		cli.Usage(prog, "%v", err)
	}
	if err := sim.ValidateDispatcherName(*dispatch); err != nil {
		cli.Usage(prog, "%v", err)
	}
	if err := sim.ValidateControllerName(*ctrl); err != nil {
		cli.Usage(prog, "%v", err)
	}

	if *list || (*exp == "" && *html == "") {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-20s %s\n", r.Name, r.Paper)
		}
		if *exp == "" && *html == "" {
			os.Exit(cli.ExitUsage)
		}
		return
	}

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	opts := experiments.Options{
		Context:          ctx,
		JobInstr:         *instr,
		Seed:             *seed,
		Workers:          *parallel,
		DisableRunCache:  !*runCache,
		DisablePlanCache: !*planCach,
		DisableEventSkip: !*eventSkip,
		FaultRate:        *faultRate,
		FaultSeed:        *faultSeed,
		Scheduler:        *sched,
		Allocator:        *alloc,
		Admission:        *admit,
		Controller:       *ctrl,
		ClusterNodes:     *nodes,
		ClusterJobs:      *jobs,
		Dispatch:         *dispatch,
	}
	if *parallel == 0 {
		opts.Workers = -1 // flag value 0 means "all CPUs"
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			cli.Fail(prog, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Fail(prog, err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			cli.Fail(prog, err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qossim:", err)
			}
			f.Close()
		}()
	}
	switch *engine {
	case "table":
		opts.Engine = sim.EngineTable
	case "trace":
		opts.Engine = sim.EngineTrace
	default:
		cli.Usage(prog, "unknown engine %q (table|trace)", *engine)
	}

	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			cli.Fail(prog, err)
		}
		defer f.Close()
		if err := experiments.WriteHTML(f, opts); err != nil {
			cli.Fail(prog, err)
		}
		fmt.Printf("wrote %s\n", *html)
		return
	}

	if *asCSV {
		if *exp == "all" {
			cli.Usage(prog, "-csv needs a single experiment name")
		}
		tab, err := experiments.CSVResult(*exp, opts)
		if err != nil {
			cli.Fail(prog, err)
		}
		if err := experiments.WriteCSV(os.Stdout, tab); err != nil {
			cli.Fail(prog, err)
		}
		return
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.Registry()
	} else {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			cli.Usage(prog, "unknown experiment %q; try -list", *exp)
		}
		runners = []experiments.Runner{r}
	}
	for i, r := range runners {
		if i > 0 {
			fmt.Println("\n" + divider)
		}
		start := time.Now()
		if err := r.Run(opts, os.Stdout); err != nil {
			cli.Fail(prog, fmt.Errorf("%s: %w", r.Name, err))
		}
		fmt.Printf("[%s completed in %v]\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}

const divider = "────────────────────────────────────────────────────────────────────"
