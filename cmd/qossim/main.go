// Command qossim regenerates the paper's tables and figures.
//
// Usage:
//
//	qossim -exp fig5                 # one experiment (table engine, paper scale)
//	qossim -exp all                  # every experiment
//	qossim -exp fig8 -engine trace   # trace-driven cache execution
//	qossim -exp fig7 -instr 20000000 # scaled-down jobs for quick runs
//	qossim -exp fig9 -parallel 8     # fan independent runs across 8 workers
//	qossim -exp all -parallel 0      # one worker per CPU
//	qossim -list                     # list experiments
//
// Multi-run experiments produce byte-identical tables at any -parallel
// setting; the flag only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cmpqos/internal/experiments"
	"cmpqos/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		engine   = flag.String("engine", "table", "execution engine: table or trace")
		instr    = flag.Int64("instr", 0, "instructions per job (0 = engine default)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default)")
		parallel = flag.Int("parallel", 1, "worker bound for independent simulation runs (0 = one per CPU)")
		list     = flag.Bool("list", false, "list available experiments")
		asCSV    = flag.Bool("csv", false, "emit machine-readable CSV instead of text tables")
		html     = flag.String("html", "", "write a single-file HTML report of ALL experiments to this path")
		runCache = flag.Bool("runcache", true, "memoize repeated simulation configs across experiments")
		planCach = flag.Bool("plancache", true, "reuse the epoch plan between QoS events inside the sim engine")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile (taken at exit) to this path")
	)
	flag.Parse()

	if *list || (*exp == "" && *html == "") {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-20s %s\n", r.Name, r.Paper)
		}
		if *exp == "" && *html == "" {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{
		JobInstr:         *instr,
		Seed:             *seed,
		Workers:          *parallel,
		DisableRunCache:  !*runCache,
		DisablePlanCache: !*planCach,
	}
	if *parallel == 0 {
		opts.Workers = -1 // flag value 0 means "all CPUs"
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qossim:", err)
			}
			f.Close()
		}()
	}
	switch *engine {
	case "table":
		opts.Engine = sim.EngineTable
	case "trace":
		opts.Engine = sim.EngineTrace
	default:
		fmt.Fprintf(os.Stderr, "qossim: unknown engine %q (table|trace)\n", *engine)
		os.Exit(2)
	}

	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteHTML(f, opts); err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *html)
		return
	}

	if *asCSV {
		if *exp == "all" {
			fmt.Fprintln(os.Stderr, "qossim: -csv needs a single experiment name")
			os.Exit(2)
		}
		tab, err := experiments.CSVResult(*exp, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		if err := experiments.WriteCSV(os.Stdout, tab); err != nil {
			fmt.Fprintln(os.Stderr, "qossim:", err)
			os.Exit(1)
		}
		return
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.Registry()
	} else {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "qossim: unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}
	for i, r := range runners {
		if i > 0 {
			fmt.Println("\n" + divider)
		}
		start := time.Now()
		if err := r.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qossim: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}

const divider = "────────────────────────────────────────────────────────────────────"
