// Package cmpqos is a library reproduction of "A Framework for Providing
// Quality of Service in Chip Multi-Processors" (Guo, Solihin, Zhao, Iyer
// — MICRO 2007).
//
// It provides, as reusable Go components:
//
//   - the QoS framework itself: convertible Resource Usage Metrics
//     targets, the Strict/Elastic(X)/Opportunistic execution modes,
//     manual and automatic mode downgrade, a reservation timeline, and
//     local/global admission controllers;
//   - the microarchitecture substrate: a set-associative shared cache
//     with per-set way partitioning and QoS-aware victim selection,
//     duplicate (shadow) tag arrays with set sampling, and the
//     resource-stealing controller;
//   - a discrete-event 4-core CMP simulator with two execution engines
//     (calibrated miss-curve tables, or synthetic address traces through
//     the real cache model), fifteen SPEC2006-like workload profiles,
//     and the paper's five evaluation configurations;
//   - runners that regenerate every table and figure of the paper's
//     evaluation.
//
// This file is the public facade: it re-exports the stable surface of
// the internal packages so downstream users never import internal paths.
package cmpqos

import (
	"io"

	"cmpqos/internal/experiments"
	"cmpqos/internal/qos"
	"cmpqos/internal/sim"
	"cmpqos/internal/workload"
)

// ---- QoS framework (the paper's core contribution) ----

// Re-exported QoS types; see internal/qos for full documentation.
type (
	// ResourceVector is a quantity of CMP computation capacity.
	ResourceVector = qos.ResourceVector
	// Target is a QoS target specification (RUM, OPM, or RPM).
	Target = qos.Target
	// RUM is the convertible Resource Usage Metrics target.
	RUM = qos.RUM
	// OPM is the non-convertible IPC target (rejected by admission).
	OPM = qos.OPM
	// RPM is the non-convertible miss-rate target (rejected too).
	RPM = qos.RPM
	// Mode is one of the three execution modes.
	Mode = qos.Mode
	// Request is an admission request.
	Request = qos.Request
	// Decision is an admission decision.
	Decision = qos.Decision
	// AdmissionController is the per-node Local Admission Controller.
	AdmissionController = qos.LAC
	// Cluster is the Global Admission Controller over several nodes.
	Cluster = qos.GAC
	// Timeline is the resource reservation timeline.
	Timeline = qos.Timeline
)

// Mode constructors.
var (
	// Strict reserves resources and timeslot exactly.
	Strict = qos.Strict
	// Elastic tolerates up to X fractional slowdown.
	Elastic = qos.Elastic
	// Opportunistic reserves nothing and scavenges spare capacity.
	Opportunistic = qos.Opportunistic
)

// ErrNotConvertible is returned for OPM/RPM targets (Definition 1).
var ErrNotConvertible = qos.ErrNotConvertible

// NewNode builds a Local Admission Controller for one CMP node. The
// paper's node is NewNode(PaperNodeCapacity()).
func NewNode(capacity ResourceVector, opts ...qos.LACOption) *AdmissionController {
	return qos.NewLAC(capacity, opts...)
}

// NodeOption configures a node; see WithAutoDowngrade and friends.
type NodeOption = qos.LACOption

// Node options.
var (
	// WithAutoDowngrade enables transparent automatic mode downgrade.
	WithAutoDowngrade = qos.WithAutoDowngrade
	// WithAutoDowngradeMinSlack gates downgrades on deadline slack.
	WithAutoDowngradeMinSlack = qos.WithAutoDowngradeMinSlack
	// WithOpportunisticPerCore caps opportunistic pins per free core.
	WithOpportunisticPerCore = qos.WithOpportunisticPerCore
)

// NewCluster builds a Global Admission Controller over CMP nodes.
func NewCluster(nodes ...*AdmissionController) *Cluster { return qos.NewGAC(nodes...) }

// Negotiation types (§3.1 counter-offers for rejected requests).
type (
	// Offer is a feasible counter-proposal from an admission controller.
	Offer = qos.Offer
	// OfferKind names the concession an offer asks for.
	OfferKind = qos.OfferKind
)

// Offer kinds.
const (
	OfferLaterDeadline = qos.OfferLaterDeadline
	OfferFewerWays     = qos.OfferFewerWays
	OfferOpportunistic = qos.OfferOpportunistic
)

// PaperNodeCapacity returns the evaluation node's capacity: 4 cores and
// 16 L2 ways.
func PaperNodeCapacity() ResourceVector { return ResourceVector{Cores: 4, CacheWays: 16} }

// Preset RUM resource vectors (§3.2).
var (
	// PresetSmall is 1 core / 4 ways.
	PresetSmall = qos.PresetSmall
	// PresetMedium is the paper's request: 1 core / 7 ways.
	PresetMedium = qos.PresetMedium
	// PresetLarge is 2 cores / 10 ways.
	PresetLarge = qos.PresetLarge
)

// ---- Simulation ----

// Re-exported simulator types; see internal/sim.
type (
	// SimConfig parameterizes one simulation run.
	SimConfig = sim.Config
	// Policy is a Table 2 evaluation configuration.
	Policy = sim.Policy
	// Engine selects the execution model (table or trace).
	Engine = sim.Engine
	// Report is a finished run's results.
	Report = sim.Report
	// JobResult is one job's outcome row.
	JobResult = sim.JobResult
)

// Policies (Table 2).
const (
	AllStrict         = sim.AllStrict
	Hybrid1           = sim.Hybrid1
	Hybrid2           = sim.Hybrid2
	AllStrictAutoDown = sim.AllStrictAutoDown
	EqualPart         = sim.EqualPart
)

// Engines.
const (
	EngineTable = sim.EngineTable
	EngineTrace = sim.EngineTrace
)

// Workload composition types; see internal/workload.
type (
	// Workload is a 10-job composition.
	Workload = workload.Composition
	// JobTemplate is one composition entry.
	JobTemplate = workload.JobTemplate
	// ModeHint is a job's preferred mode within a composition.
	ModeHint = workload.ModeHint
	// Profile is a benchmark's calibrated model.
	Profile = workload.Profile
)

// Mode hints.
const (
	HintStrict        = workload.HintStrict
	HintElastic       = workload.HintElastic
	HintOpportunistic = workload.HintOpportunistic
)

// Workload constructors.
var (
	// SingleWorkload is ten instances of one benchmark.
	SingleWorkload = workload.Single
	// Mix1 is Table 3's stealing-favourable mix.
	Mix1 = workload.Mix1
	// Mix2 is Table 3's unfavourable mix.
	Mix2 = workload.Mix2
	// Benchmarks lists the fifteen SPEC2006-like profiles.
	Benchmarks = workload.Profiles
	// BenchmarkByName looks a profile up.
	BenchmarkByName = workload.ByName
)

// Phase scales a job's miss behaviour over part of its run (§3.1's
// dynamic behaviour; see Profile.WithPhases).
type Phase = workload.Phase

// Cluster-simulation types (the paper's Figure 2 environment).
type (
	// ClusterSimConfig parameterizes a multi-node GAC-fronted run.
	ClusterSimConfig = sim.ClusterConfig
	// ClusterReport aggregates a cluster run.
	ClusterReport = sim.ClusterReport
)

// SimulateCluster runs a GAC-fronted multi-node simulation.
func SimulateCluster(cfg ClusterSimConfig) (*ClusterReport, error) {
	cr, err := sim.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cr.Run()
}

// NewSimConfig returns the paper's evaluation configuration (§6) for a
// policy and workload: table engine, 200 M instructions per job.
func NewSimConfig(p Policy, w Workload) SimConfig { return sim.DefaultConfig(p, w) }

// NewTraceSimConfig returns a configuration that executes through the
// real cache model with synthetic address traces (scaled down).
func NewTraceSimConfig(p Policy, w Workload) SimConfig { return sim.TraceConfig(p, w) }

// Simulate runs one configuration to completion.
func Simulate(cfg SimConfig) (*Report, error) {
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// ---- Experiments (paper tables & figures) ----

// ExperimentOptions configures an experiment run.
type ExperimentOptions = experiments.Options

// Experiments returns every paper table/figure runner.
func Experiments() []experiments.Runner { return experiments.Registry() }

// RunExperiment regenerates one named table or figure, writing its text
// rendition to w.
func RunExperiment(name string, o ExperimentOptions, w io.Writer) error {
	r, ok := experiments.Lookup(name)
	if !ok {
		return errUnknownExperiment(name)
	}
	return r.Run(o, w)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "cmpqos: unknown experiment " + string(e)
}
