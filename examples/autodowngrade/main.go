// Automatic mode downgrade walkthrough (§3.3–3.4, Figure 7): even when
// every user insists on the Strict mode, the system can transparently
// downgrade jobs whose deadlines have slack — they run opportunistically
// on fragmented resources while a fall-back reservation placed as late
// as possible guarantees the deadline. This example runs All-Strict and
// All-Strict+AutoDown side by side and renders both execution traces.
package main

import (
	"fmt"
	"log"

	"cmpqos"
)

func main() {
	runCfg := func(p cmpqos.Policy) *cmpqos.Report {
		cfg := cmpqos.NewSimConfig(p, cmpqos.SingleWorkload("bzip2"))
		cfg.JobInstr = 20_000_000
		cfg.StealIntervalInstr = cfg.JobInstr / 100
		rep, err := cmpqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	strict := runCfg(cmpqos.AllStrict)
	auto := runCfg(cmpqos.AllStrictAutoDown)

	fmt.Printf("All-Strict:          %4.0f Mcyc to finish ten jobs (hit rate %.0f%%)\n",
		float64(strict.TotalCycles)/1e6, strict.DeadlineHitRate*100)
	fmt.Print(strict.Gantt(76))

	downs, backs := 0, 0
	for _, j := range auto.Jobs {
		if j.AutoDowngraded {
			downs++
			if j.SwitchedBack {
				backs++
			}
		}
	}
	fmt.Printf("\nAll-Strict+AutoDown: %4.0f Mcyc (hit rate %.0f%%) — %.0f%% faster\n",
		float64(auto.TotalCycles)/1e6, auto.DeadlineHitRate*100,
		(1-float64(auto.TotalCycles)/float64(strict.TotalCycles))*100)
	fmt.Printf("%d jobs transparently downgraded; %d needed their reserved switch-back\n",
		downs, backs)
	fmt.Print(auto.Gantt(76))

	fmt.Println("\nreading the trace: '#' segments run opportunistically on resources")
	fmt.Println("that All-Strict leaves fragmented; '^' marks the switch back to the")
	fmt.Println("reserved Strict timeslot that makes the deadline guarantee hold.")
}
