// SLA tiers: the paper's intro motivates QoS with utility computing —
// a "gold" client buys guaranteed resources while cheaper tiers accept
// weaker guarantees. This example maps gold/silver/bronze service tiers
// onto the three execution modes and shows what each tier actually gets:
// gold (Strict) and silver (Elastic 5%) meet every deadline with tight
// wall-clock distributions, bronze (Opportunistic) rides leftover
// capacity with no guarantee.
package main

import (
	"fmt"
	"log"

	"cmpqos"
)

func main() {
	// A consolidation-style workload: a cache-hungry database-like job
	// (bzip2 profile) on gold, a compute-heavy scorer (hmmer) on silver,
	// and batch analytics (gobmk) on bronze.
	w := cmpqos.Workload{Name: "sla-tiers"}
	tiers := []struct {
		bench string
		hint  cmpqos.ModeHint
	}{
		{"bzip2", cmpqos.HintStrict},        // gold
		{"hmmer", cmpqos.HintElastic},       // silver
		{"gobmk", cmpqos.HintOpportunistic}, // bronze
	}
	for i := 0; i < 9; i++ {
		t := tiers[i%3]
		w.Jobs = append(w.Jobs, cmpqos.JobTemplate{Benchmark: t.bench, Hint: t.hint})
	}
	// A tenth gold job keeps the composition at the paper's size.
	w.Jobs = append(w.Jobs, cmpqos.JobTemplate{Benchmark: "bzip2", Hint: cmpqos.HintStrict})

	cfg := cmpqos.NewSimConfig(cmpqos.Hybrid2, w)
	cfg.JobInstr = 20_000_000
	cfg.StealIntervalInstr = cfg.JobInstr / 100

	rep, err := cmpqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tierOf := func(j cmpqos.JobResult) string {
		switch j.Mode.String() {
		case "Strict":
			return "gold"
		case "Opportunistic":
			return "bronze"
		default:
			return "silver"
		}
	}
	fmt.Println("SLA tier outcomes (Hybrid-2, resource stealing on):")
	fmt.Println("tier    job   benchmark  mode           wall(Mcyc)  deadline-met  ways-stolen")
	for _, j := range rep.Jobs {
		fmt.Printf("%-7s %-5d %-10s %-14s %9.1f  %-12v %d\n",
			tierOf(j), j.ID, j.Benchmark, j.Mode.String(),
			float64(j.WallClock)/1e6, j.Met, j.WaysStolen)
	}
	fmt.Printf("\nreserved-tier deadline hit rate: %.0f%%\n", rep.DeadlineHitRate*100)
	fmt.Printf("silver tier gave up cache worth a %.1f%% miss increase (bounded at 5%%),\n",
		rep.ElasticMissIncrease*100)
	fmt.Printf("slowing it only %.1f%% in CPI — the §4.2 additive-CPI guarantee.\n",
		rep.ElasticCPIIncrease*100)
}
