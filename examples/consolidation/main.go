// Server consolidation: the paper assumes a server of CMP nodes fronted
// by a Global Admission Controller (§3.1, Figure 2). This example drives
// that layer directly: a stream of jobs with mixed deadlines is submitted
// to a three-node cluster; the GAC probes each node's Local Admission
// Controller and places every job at the node offering the earliest
// start, negotiating weaker modes when no node can satisfy Strict.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cmpqos"
)

func main() {
	nodes := []*cmpqos.AdmissionController{
		cmpqos.NewNode(cmpqos.PaperNodeCapacity()),
		cmpqos.NewNode(cmpqos.PaperNodeCapacity()),
		cmpqos.NewNode(cmpqos.PaperNodeCapacity()),
	}
	cluster := cmpqos.NewCluster(nodes...)

	rng := rand.New(rand.NewSource(7))
	tw := int64(1_000_000_000) // ~0.5 s of work at 2 GHz
	placements := make([]int, len(nodes))
	var rejected, negotiated int

	fmt.Println("submitting 24 jobs to a 3-node cluster (4 cores / 16 ways each):")
	for i := 0; i < 24; i++ {
		arrival := int64(i) * tw / 16
		// 50/30/20 tight/moderate/relaxed deadlines, as in §6.
		var factor float64
		switch r := rng.Float64(); {
		case r < 0.5:
			factor = 1.05
		case r < 0.8:
			factor = 2.0
		default:
			factor = 3.0
		}
		req := cmpqos.Request{
			JobID: i + 1,
			Target: cmpqos.RUM{
				Resources:    cmpqos.PresetMedium(),
				MaxWallClock: tw,
				Deadline:     arrival + int64(factor*float64(tw)),
			},
			Mode:    cmpqos.Strict(),
			Arrival: arrival,
		}
		node, mode, dec := cluster.SubmitOrNegotiate(req, 0.05)
		switch {
		case !dec.Accepted:
			rejected++
			if n, offer, ok := cluster.NegotiateBest(req); ok {
				fmt.Printf("  job %2d: REJECTED; counter-offer from node %d: %s %v start %.0f Mcyc\n",
					req.JobID, n, offer.Kind, offer.Resources, float64(offer.Start)/1e6)
			} else {
				fmt.Printf("  job %2d: REJECTED everywhere (%s)\n", req.JobID, dec.Reason)
			}
		case mode != cmpqos.Strict():
			negotiated++
			placements[node]++
			fmt.Printf("  job %2d: node %d as %-13s (negotiated down; start %4.0f Mcyc)\n",
				req.JobID, node, mode.String(), float64(dec.Start)/1e6)
		default:
			placements[node]++
			fmt.Printf("  job %2d: node %d as %-13s (start %4.0f Mcyc)\n",
				req.JobID, node, mode.String(), float64(dec.Start)/1e6)
		}
	}

	fmt.Println("\ncluster placement:")
	for n, c := range placements {
		probes, admits, rejects := nodes[n].Counters()
		fmt.Printf("  node %d: %2d jobs placed (%d probes, %d admits, %d rejects locally)\n",
			n, c, probes, admits, rejects)
	}
	fmt.Printf("negotiated to weaker modes: %d, globally rejected: %d\n", negotiated, rejected)
	if rejected > 0 {
		log.Printf("note: global rejections are the expected behaviour once every "+
			"node's timeline is full before the requested deadlines (%d here)", rejected)
	}
}
