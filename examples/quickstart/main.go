// Quickstart: run the paper's Hybrid-2 configuration on a ten-job bzip2
// workload and read off the QoS framework's headline result — all
// reserved-mode jobs meet their deadlines while Elastic jobs donate
// stolen cache ways to Opportunistic ones.
package main

import (
	"fmt"
	"log"

	"cmpqos"
)

func main() {
	// The paper's 4-core CMP (2 MB 16-way shared L2, 2 GHz in-order
	// cores) running ten instances of bzip2: 40% Strict, 30% Elastic(5%),
	// 30% Opportunistic.
	cfg := cmpqos.NewSimConfig(cmpqos.Hybrid2, cmpqos.SingleWorkload("bzip2"))
	cfg.JobInstr = 20_000_000 // scale the paper's 200 M down for a quick demo
	cfg.StealIntervalInstr = cfg.JobInstr / 100

	rep, err := cmpqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep.Summary())
	fmt.Println("per-job outcomes:")
	for _, j := range rep.Jobs {
		fmt.Printf("  job %-4d %-13s wall-clock %4.1f Mcyc  deadline met: %v\n",
			j.ID, j.Mode.String(), float64(j.WallClock)/1e6, j.Met)
	}
	fmt.Println("\nexecution trace:")
	fmt.Print(rep.Gantt(76))
}
