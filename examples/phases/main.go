// Phased workloads: server jobs have "dynamic and input-dependent
// behavior" (§3.1), so the maximum-wall-clock request must budget the
// worst phase — making calm phases internal fragmentation. This example
// runs a bzip2 whose first half is calm (half the misses) and second
// half hot, and shows that (a) Strict reservations still meet every
// deadline because tw covers the hot phase, and (b) under Hybrid-2 the
// Elastic phased jobs donate their calm-phase slack to Opportunistic
// neighbours via resource stealing, recovering throughput that a static
// view of the job would have wasted.
package main

import (
	"fmt"
	"log"

	"cmpqos"
)

func main() {
	phases := []cmpqos.Phase{
		{Until: 0.5, MPIScale: 0.5}, // calm first half
		{Until: 1.0, MPIScale: 1.0}, // hot second half
	}
	build := func(withPhases bool) cmpqos.Workload {
		w := cmpqos.Workload{Name: "phased"}
		for i := 0; i < 10; i++ {
			hint := cmpqos.HintStrict
			switch i % 10 {
			case 1, 4, 7:
				hint = cmpqos.HintElastic
			case 2, 5, 8:
				hint = cmpqos.HintOpportunistic
			}
			jt := cmpqos.JobTemplate{Benchmark: "bzip2", Hint: hint}
			if withPhases {
				jt.Phases = phases
			}
			w.Jobs = append(w.Jobs, jt)
		}
		return w
	}
	runOne := func(w cmpqos.Workload) *cmpqos.Report {
		cfg := cmpqos.NewSimConfig(cmpqos.Hybrid2, w)
		cfg.JobInstr = 20_000_000
		cfg.StealIntervalInstr = cfg.JobInstr / 100
		rep, err := cmpqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	uniform := runOne(build(false))
	phased := runOne(build(true))

	fmt.Println("Hybrid-2, ten bzip2 jobs, with and without phase behaviour:")
	fmt.Printf("%-22s %-14s %-14s\n", "", "uniform", "phased (calm 1st half)")
	fmt.Printf("%-22s %11.0f M  %11.0f M\n", "total wall-clock",
		float64(uniform.TotalCycles)/1e6, float64(phased.TotalCycles)/1e6)
	fmt.Printf("%-22s %12.0f%%  %12.0f%%\n", "deadline hit rate",
		uniform.DeadlineHitRate*100, phased.DeadlineHitRate*100)
	fmt.Printf("%-22s %11.1f%%  %12.1f%%\n", "elastic miss increase",
		uniform.ElasticMissIncrease*100, phased.ElasticMissIncrease*100)
	fmt.Printf("%-22s %11.0f M  %11.0f M\n", "opportunistic wall avg",
		uniform.OppWallClock.Mean()/1e6, phased.OppWallClock.Mean()/1e6)

	fmt.Println("\nthe phased jobs' calm halves finish ahead of their worst-case budget,")
	fmt.Println("so reservations release early and the whole workload completes sooner —")
	fmt.Println("while the deadline guarantee (sized for the hot phase) never breaks.")
}
