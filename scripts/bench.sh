#!/bin/sh
# Runs the hot-path benchmark suite with allocation stats and records
# the results in BENCH_<date>.json in the repo root. COUNT=N runs each
# benchmark N times (the JSON then carries one entry per run; compare
# medians, not single runs — single-run ns/op is noisy).
#
# If the day's file already exists, the new results are appended as a
# "run_<HHMMSS>" section instead of clobbering the curated sections a
# PR may have recorded earlier the same day.
set -eu
cd "$(dirname "$0")/.."

date="$(date +%F)"
out="BENCH_${date}.json"
benches='BenchmarkFig5$|BenchmarkSimTableEngine$|BenchmarkSimTableEngineNoPlanCache$|BenchmarkSimTableEngineNoEventSkip$|BenchmarkSimSteadyState$|BenchmarkSimSteadyStateNoEventSkip$|BenchmarkClusterSteadyFleet$|BenchmarkClusterSteadyFleetNoEventSkip$|BenchmarkExperimentPairRunCacheOn$|BenchmarkExperimentPairRunCacheOff$|BenchmarkCachePartitioned$|BenchmarkShadowTagsObserve$|BenchmarkMissCurveReplay$|BenchmarkMissCurveSinglePass$|BenchmarkMissCurveSinglePassSampled$|BenchmarkTimelineEarliestFit$|BenchmarkTimelineChurn$|BenchmarkTimelineSetCapacity$|BenchmarkTimelineAvailability$|BenchmarkWALAppend$|BenchmarkDaemonSubmit$|BenchmarkClusterDispatch|BenchmarkControllerTick$'

raw="$(go test -run '^$' -bench "$benches" -benchmem -count "${COUNT:-1}" .)"
printf '%s\n' "$raw"

results="$(printf '%s\n' "$raw" | awk '
	# Locate each value by its unit: benchmarks may report custom
	# metrics that shift the column positions.
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = b = allocs = "null"
		for (i = 3; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			else if ($i == "B/op") b = $(i - 1)
			else if ($i == "allocs/op") allocs = $(i - 1)
		}
		if (sep) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
			name, $2, ns, b, allocs
		sep = 1
	}
	END { printf "\n" }
')"

if [ -f "$out" ]; then
	# Append mode: drop the closing brace and splice in a timestamped
	# section (the leading comma keeps the JSON valid).
	run="run_$(date +%H%M%S)"
	tmp="${out}.tmp"
	sed '$d' "$out" > "$tmp"
	{
		printf '  ,"%s": {\n' "$run"
		printf '    "go": "%s",\n' "$(go env GOVERSION)"
		printf '    "host_cpus": %s,\n' "$(nproc)"
		printf '    "results": [\n'
		printf '%s' "$results"
		printf '    ]\n'
		printf '  }\n'
		printf '}\n'
	} >> "$tmp"
	mv "$tmp" "$out"
else
	{
		printf '{\n'
		printf '  "date": "%s",\n' "$date"
		printf '  "go": "%s",\n' "$(go env GOVERSION)"
		printf '  "host_cpus": %s,\n' "$(nproc)"
		printf '  "results": [\n'
		printf '%s' "$results"
		printf '  ]\n'
		printf '}\n'
	} > "$out"
fi
echo "wrote $out"
