#!/bin/sh
# Daemon crash-recovery smoke: build qosd and qosload, then run a short
# chaos burst — concurrent load with the daemon SIGKILLed and restarted
# mid-run on the same state directory. qosload exits non-zero if any
# acknowledged grant is lost in recovery, any job is double-admitted,
# or the daemon never serves (exit 4). CI runs this after the unit
# suite; it is also handy locally before touching internal/server.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; pkill -f "qosd-smoke-state" 2>/dev/null || true' EXIT

go build -o "$tmp/qosd" ./cmd/qosd
go build -o "$tmp/qosload" ./cmd/qosload

"$tmp/qosload" -chaos \
	-qosd "$tmp/qosd" \
	-dir "$tmp/qosd-smoke-state" \
	-addr 127.0.0.1:8873 \
	-n "${SMOKE_N:-600}" -c 8 -kills "${SMOKE_KILLS:-2}" -seed 7
echo "qosd smoke ok"
